"""Tests for the tensor-parallel extension (Discussion b)."""

import pytest

from repro.errors import ConfigError
from repro.transformer.distributed import (
    TensorParallelConfig,
    allreduce_time,
    estimate_latency_distributed,
)
from repro.transformer.inference import MAGICUBE_8_8, InferenceConfig

BASE = InferenceConfig(seq_len=4096, num_heads=8, batch=8, sparsity=0.9)


class TestAllReduce:
    def test_single_gpu_free(self):
        assert allreduce_time(10**9, 1, 300.0) == 0.0

    def test_volume_scales_with_ring(self):
        t2 = allreduce_time(10**8, 2, 300.0)
        t8 = allreduce_time(10**8, 8, 300.0)
        assert t8 > t2  # (g-1)/g grows with g

    def test_bandwidth_helps(self):
        assert allreduce_time(10**9, 4, 600.0) < allreduce_time(10**9, 4, 300.0)


class TestTensorParallel:
    def test_two_gpus_speed_up(self):
        one = estimate_latency_distributed(
            TensorParallelConfig(base=BASE, num_gpus=1), MAGICUBE_8_8
        )
        two = estimate_latency_distributed(
            TensorParallelConfig(base=BASE, num_gpus=2), MAGICUBE_8_8
        )
        assert two["total_s"] < one["total_s"]
        assert two["speedup_vs_1gpu"] > 1.2

    def test_scaling_sublinear(self):
        """Communication makes 8-way less than 4x the 2-way speedup."""
        s2 = estimate_latency_distributed(
            TensorParallelConfig(base=BASE, num_gpus=2), MAGICUBE_8_8
        )["speedup_vs_1gpu"]
        s8 = estimate_latency_distributed(
            TensorParallelConfig(base=BASE, num_gpus=8), MAGICUBE_8_8
        )["speedup_vs_1gpu"]
        assert s2 < s8 < 4 * s2

    def test_comm_fraction_grows(self):
        f2 = estimate_latency_distributed(
            TensorParallelConfig(base=BASE, num_gpus=2), MAGICUBE_8_8
        )["comm_fraction"]
        f8 = estimate_latency_distributed(
            TensorParallelConfig(base=BASE, num_gpus=8), MAGICUBE_8_8
        )["comm_fraction"]
        assert 0 < f2 < f8 < 1

    def test_heads_must_shard(self):
        with pytest.raises(ConfigError):
            TensorParallelConfig(
                base=InferenceConfig(4096, 4, 2, 0.9), num_gpus=8
            )

    def test_bad_gpu_count(self):
        with pytest.raises(ConfigError):
            TensorParallelConfig(base=BASE, num_gpus=0)
