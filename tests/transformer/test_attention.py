"""Tests for dense, masked, and quantized attention."""

import numpy as np
import pytest

from repro.transformer.attention import MultiHeadAttention
from repro.transformer.layers import softmax
from repro.transformer.masks import mask_to_additive, random_vector_mask


def make_attn(d_model=32, heads=2, seed=0):
    return MultiHeadAttention(d_model, heads, np.random.default_rng(seed))


class TestDensePath:
    def test_output_shape(self):
        attn = make_attn()
        x = np.random.default_rng(1).normal(size=(2, 16, 32)).astype(np.float32)
        assert attn.forward(x).shape == (2, 16, 32)

    def test_matches_manual_single_head(self):
        attn = make_attn(d_model=8, heads=1, seed=2)
        x = np.random.default_rng(3).normal(size=(1, 4, 8)).astype(np.float32)
        out = attn.forward(x)
        q = x[0] @ attn.wq.w.value + attn.wq.b.value
        k = x[0] @ attn.wk.w.value + attn.wk.b.value
        v = x[0] @ attn.wv.w.value + attn.wv.b.value
        probs = softmax(q @ k.T / np.sqrt(8))
        expect = (probs @ v) @ attn.wo.w.value + attn.wo.b.value
        np.testing.assert_allclose(out[0], expect, rtol=1e-4, atol=1e-5)

    def test_mask_blocks_positions(self):
        """Masked-out positions contribute nothing to the context."""
        attn = make_attn(d_model=16, heads=2, seed=4)
        rng = np.random.default_rng(5)
        mask = random_vector_mask(16, 0.5, vector_length=8, seed=6)
        add = mask_to_additive(mask)
        x = rng.normal(size=(1, 16, 16)).astype(np.float32)
        base = attn.forward(x, add)
        # perturb x at a column masked out for row 0
        dense_keep = mask.to_dense()[0] != 0
        blocked = np.nonzero(~dense_keep)[0]
        if blocked.size:
            x2 = x.copy()
            x2[0, blocked[0]] += 10.0
            out2 = attn.forward(x2, add)
            # row 0's output only changes via V/K of *kept* columns;
            # the blocked column cannot leak attention weight to row 0
            probs_change = np.abs(base[0, 0] - out2[0, 0])
            assert probs_change.max() < 10.0  # bounded: no direct leak

    def test_backward_shapes_and_grads(self):
        attn = make_attn()
        x = np.random.default_rng(7).normal(size=(2, 8, 32)).astype(np.float32)
        y = attn.forward(x)
        dx = attn.backward(np.ones_like(y))
        assert dx.shape == x.shape
        assert np.isfinite(dx).all()
        assert np.abs(attn.wq.w.grad).sum() > 0

    def test_gradient_check_tiny(self):
        attn = make_attn(d_model=4, heads=1, seed=8)
        x = np.random.default_rng(9).normal(size=(1, 3, 4)).astype(np.float64)
        dy = np.random.default_rng(10).normal(size=(1, 3, 4)).astype(np.float64)
        attn.forward(x)
        dx = attn.backward(dy)
        eps = 1e-5
        num = np.zeros_like(x)
        for i in np.ndindex(x.shape):
            x[i] += eps
            hi = float((attn.forward(x) * dy).sum())
            x[i] -= 2 * eps
            lo = float((attn.forward(x) * dy).sum())
            x[i] += eps
            num[i] = (hi - lo) / (2 * eps)
        np.testing.assert_allclose(dx, num, atol=1e-4)


class TestQuantizedPath:
    def test_close_to_float_masked(self):
        """Fig. 16 pipeline approximates float masked attention."""
        attn = make_attn(d_model=16, heads=2, seed=11)
        rng = np.random.default_rng(12)
        mask = random_vector_mask(16, 0.3, vector_length=8, seed=13)
        x = rng.normal(size=(1, 16, 16)).astype(np.float32)
        ref = attn.forward(x, mask_to_additive(mask))
        q = attn.forward_quantized(x, mask, softmax_bits=16, qkv_bits=8)
        rel = np.abs(q - ref).mean() / (np.abs(ref).mean() + 1e-9)
        assert rel < 0.05

    def test_lower_bits_larger_error(self):
        attn = make_attn(d_model=16, heads=2, seed=14)
        rng = np.random.default_rng(15)
        mask = random_vector_mask(16, 0.3, vector_length=8, seed=16)
        x = rng.normal(size=(2, 16, 16)).astype(np.float32)
        ref = attn.forward(x, mask_to_additive(mask))
        errs = []
        for sm_bits, qkv_bits in ((16, 8), (8, 8), (8, 4)):
            q = attn.forward_quantized(x, mask, sm_bits, qkv_bits)
            errs.append(float(np.abs(q - ref).mean()))
        assert errs[0] <= errs[1] <= errs[2]

    def test_kernel_path_matches_fake_quant(self):
        """The real Magicube kernel pipeline == dense fake-quant math."""
        attn = make_attn(d_model=16, heads=1, seed=17)
        rng = np.random.default_rng(18)
        mask = random_vector_mask(16, 0.3, vector_length=8, seed=19)
        x = rng.normal(size=(1, 16, 16)).astype(np.float32)
        fake = attn.forward_quantized(x, mask, 16, 8, use_kernels=False)
        real = attn.forward_quantized(x, mask, 16, 8, use_kernels=True)
        np.testing.assert_allclose(real, fake, rtol=1e-3, atol=1e-3)

    @pytest.mark.parametrize("sm,qkv", [(16, 8), (8, 8), (8, 4), (4, 4)])
    def test_all_fig17_schemes_run(self, sm, qkv):
        attn = make_attn(d_model=16, heads=2, seed=20)
        mask = random_vector_mask(16, 0.3, vector_length=8, seed=21)
        x = np.random.default_rng(22).normal(size=(1, 16, 16)).astype(np.float32)
        out = attn.forward_quantized(x, mask, sm, qkv)
        assert np.isfinite(out).all()
