"""repro-autotune CLI: sweep / export / verify / diff."""

import json

from repro.autotune.cli import main


def run_sweep_cli(tmp_path, *extra):
    out = tmp_path / "plans.json"
    rc = main([
        "sweep", "--device", "A100", "--shape", "512x512x64",
        "--backend", "magicube-emulation", "--min-bits", "8x8",
        "--warmup", "0", "--repeats", "1", "--quiet",
        "--out", str(out), *extra,
    ])
    return rc, out


class TestSweep:
    def test_writes_artifact_pair(self, tmp_path, capsys):
        rc, out = run_sweep_cli(tmp_path)
        assert rc == 0
        assert out.exists()
        manifest = tmp_path / "plans.manifest.json"
        assert manifest.exists()
        payload = json.loads(out.read_text())
        assert payload["version"] == 2 and payload["plans"]
        m = json.loads(manifest.read_text())
        assert m["backends"] and m["devices"] and m["plans"] >= 1

    def test_json_summary(self, tmp_path, capsys):
        out = tmp_path / "plans.json"
        rc = main([
            "sweep", "--device", "A100", "--shape", "512x512x64",
            "--backend", "magicube-emulation", "--min-bits", "8x8",
            "--warmup", "0", "--repeats", "1", "--json", "--out", str(out),
        ])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["measured"] == 1
        assert summary["artifact"] == str(out)

    def test_bad_device_is_a_clean_error(self, tmp_path, capsys):
        rc = main([
            "sweep", "--device", "TPU9000", "--quiet",
            "--out", str(tmp_path / "p.json"),
        ])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestVerify:
    def test_fresh_artifact_verifies(self, tmp_path, capsys):
        _, out = run_sweep_cli(tmp_path)
        assert main(["verify", str(out)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_registry_mismatch_is_flagged(self, tmp_path, capsys):
        """The ISSUE acceptance gate: verify flags manifest drift."""
        _, out = run_sweep_cli(tmp_path)
        mpath = tmp_path / "plans.manifest.json"
        payload = json.loads(mpath.read_text())
        payload["backends"]["magicube-emulation"] = "deadbeefcafe"
        mpath.write_text(json.dumps(payload))
        assert main(["verify", str(out)]) == 1
        assert "DRIFT" in capsys.readouterr().out

    def test_missing_manifest_fails_verification(self, tmp_path, capsys):
        _, out = run_sweep_cli(tmp_path)
        (tmp_path / "plans.manifest.json").unlink()
        assert main(["verify", str(out)]) == 1


class TestExportAndDiff:
    def test_export_wraps_a_bare_cache(self, tmp_path, capsys):
        _, out = run_sweep_cli(tmp_path)
        exported = tmp_path / "shipped.json"
        assert main(["export", str(out), "--out", str(exported)]) == 0
        assert exported.exists()
        assert (tmp_path / "shipped.manifest.json").exists()
        assert main(["verify", str(exported)]) == 0

    def test_diff_identical(self, tmp_path, capsys):
        _, out = run_sweep_cli(tmp_path)
        assert main(["diff", str(out), str(out)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_reports_added_plans(self, tmp_path, capsys):
        _, small = run_sweep_cli(tmp_path)
        big_dir = tmp_path / "big"
        big_dir.mkdir()
        rc = main([
            "sweep", "--device", "A100", "--shape", "512x512x64",
            "--shape", "512x512x128", "--backend", "magicube-emulation",
            "--min-bits", "8x8", "--warmup", "0", "--repeats", "1",
            "--quiet", "--out", str(big_dir / "plans.json"),
        ])
        assert rc == 0
        assert main(["diff", str(small), str(big_dir / "plans.json")]) == 1
        out = capsys.readouterr().out
        assert "added" in out and "1 added" in out


class TestWatch:
    def export_snapshot(self, tmp_path, widths=(64,)):
        import numpy as np

        from repro import api
        from tests.conftest import make_structured_sparse

        rng = np.random.default_rng(0)
        weights = make_structured_sparse(rng, 512, 512, 8, 0.9, bits=8)
        path = tmp_path / "telemetry.json"
        with api.open_engine(device="A100") as client:
            session = client.prepare(api.SpmmRequest(lhs=weights, session="ffn"))
            for n in widths:
                session.run(rng.integers(-128, 128, size=(512, n)))
            client.telemetry.snapshot().save(path)
        return path

    def test_watch_ships_a_retuned_artifact(self, tmp_path, capsys):
        snapshot = self.export_snapshot(tmp_path)
        out = tmp_path / "retuned" / "plans.json"
        rc = main(["watch", str(snapshot), "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "cold-miss" in text
        assert out.exists()
        manifest = json.loads(
            (tmp_path / "retuned" / "plans.manifest.json").read_text()
        )
        assert manifest["sweep"]["source"] == "retune-watch"
        assert manifest["sweep"]["retune"]["snapshot"]
        assert manifest["plans"] >= 1
        # the shipped artifact passes its own drift check
        assert main(["verify", str(out)]) == 0

    def test_watch_with_warm_baseline_is_quiet(self, tmp_path, capsys):
        # two request classes: neither reaches a 100% hot share, so
        # only the cold-miss trigger is in play
        snapshot = self.export_snapshot(tmp_path, widths=(64, 128))
        out1 = tmp_path / "first" / "plans.json"
        assert main(["watch", str(snapshot), "--out", str(out1),
                     "--hot-share", "1.0"]) == 0
        capsys.readouterr()
        # second run: the first artifact is the baseline, nothing is cold
        out2 = tmp_path / "second" / "plans.json"
        rc = main(["watch", str(snapshot), "--plans", str(out1),
                   "--out", str(out2), "--hot-share", "1.0"])
        assert rc == 0
        assert "nothing to re-tune" in capsys.readouterr().out
        assert not out2.exists()

    def test_watch_json_cycle_record(self, tmp_path, capsys):
        snapshot = self.export_snapshot(tmp_path)
        out = tmp_path / "retuned" / "plans.json"
        rc = main(["watch", str(snapshot), "--out", str(out), "--json"])
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        assert record["promoted"] >= 1
        assert record["snapshot"]
        assert record["artifact"] == str(out)

    def test_missing_snapshot_is_a_clean_error(self, tmp_path, capsys):
        rc = main(["watch", str(tmp_path / "nope.json"),
                   "--out", str(tmp_path / "out.json")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_multi_cycle_watch_cools_down_hot_keys(self, tmp_path, capsys):
        """Polling an unchanged snapshot must not re-sweep the same hot
        key on every cycle — the cooldown carries across cycles."""
        snapshot = self.export_snapshot(tmp_path)  # one key, 100% share
        out = tmp_path / "retuned" / "plans.json"
        rc = main(["watch", str(snapshot), "--out", str(out),
                   "--cycles", "2", "--interval", "0"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "cycle 1" in text and "cycle 2" in text
        assert text.count("plan(s) shipped") == 1
        assert "cycle 2: snapshot" in text and "nothing to re-tune" in text
