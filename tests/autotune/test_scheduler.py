"""Retune scheduler: cycles, promotion, provenance, engine wiring."""

import json
import threading

import numpy as np
import pytest

from repro import api
from repro.autotune import (
    ArtifactManifest,
    RetunePolicy,
    SweepBudget,
    manifest_path,
)
from repro.errors import RetuneError
from tests.conftest import make_structured_sparse


@pytest.fixture
def weights(rng):
    return make_structured_sparse(rng, 512, 512, 8, 0.9, bits=8)


def quiet_policy(**overrides) -> RetunePolicy:
    """A policy whose timer never fires: cycles are driven by run_once."""
    defaults = dict(
        interval_s=3600.0,
        min_requests=1,
        hot_share=0.05,
        cooldown_s=0.0,
        budget=SweepBudget(max_trials=16, max_seconds=60.0),
        repeats=1,
    )
    defaults.update(overrides)
    return RetunePolicy(**defaults)


def serve_widths(client, weights, widths, per=2):
    session = client.prepare(api.SpmmRequest(lhs=weights, session="ffn"))
    rng = np.random.default_rng(1)
    for n in widths:
        for _ in range(per):
            session.run(rng.integers(-128, 128, size=(512, n)))
    return session


class TestEngineWiring:
    def test_open_engine_starts_and_close_stops(self):
        client = api.open_engine(device="A100", retune=quiet_policy())
        try:
            assert client.retune is not None
            assert client.retune.running
            status = client.retune_status()
            assert status.running and status.cycles == 0
        finally:
            client.close()
        assert not client.retune.running

    def test_without_retune_status_raises_typed_error(self):
        with api.open_engine(device="A100") as client:
            assert client.retune is None
            with pytest.raises(RetuneError):
                client.retune_status()

    def test_idle_engine_produces_no_triggers(self):
        with api.open_engine(device="A100", retune=quiet_policy()) as client:
            cycle = client.retune.run_once()
            assert cycle.triggers == []
            assert cycle.promoted == 0

    def test_slo_cycle_publishes_health_metrics(self, weights):
        from repro.obs import names
        from repro.obs.health import DEFAULT_SLOS
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        policy = quiet_policy(slos=DEFAULT_SLOS)
        with api.open_engine(
            device="A100", metrics=registry, retune=policy
        ) as client:
            serve_widths(client, weights, [16], per=2)
            client.retune.run_once()
        evaluations = sum(
            c.value for _, c in registry.samples(names.SLO_EVALUATIONS)
        )
        assert evaluations == len(DEFAULT_SLOS)

    def test_policy_without_slos_skips_health(self):
        from repro.obs import names
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        with api.open_engine(
            device="A100", metrics=registry, retune=quiet_policy()
        ) as client:
            client.retune.run_once()
        assert registry.samples(names.SLO_EVALUATIONS) == []


class TestCycles:
    def test_cold_misses_trigger_and_promote(self, weights):
        with api.open_engine(device="A100", retune=quiet_policy()) as client:
            serve_widths(client, weights, (64, 128))
            cycle = client.retune.run_once()
            assert {t.reason for t in cycle.triggers} == {"cold-miss"}
            assert cycle.measured == 2
            assert cycle.promoted == 2
            # every triggered key is now live in the engine's cache
            for t in cycle.triggers:
                assert client.planner.cache.peek(t.plan_key) is not None

    def test_promoted_keys_join_the_baseline(self, weights):
        """After a promotion the same traffic no longer cold-misses; with
        cooldown active it does not re-trigger as hot either."""
        policy = quiet_policy(cooldown_s=3600.0)
        with api.open_engine(device="A100", retune=policy) as client:
            serve_widths(client, weights, (64,))
            first = client.retune.run_once()
            assert first.promoted == 1
            second = client.retune.run_once()
            assert second.triggers == []

    def test_status_accumulates(self, weights):
        with api.open_engine(device="A100", retune=quiet_policy()) as client:
            serve_widths(client, weights, (64,))
            client.retune.run_once()
            status = client.retune_status()
            assert status.cycles == 1
            assert status.triggers_total == 1
            assert status.promoted_total == 1
            assert status.last_cycle["snapshot"]
            assert status.last_error is None
            assert status.to_dict()["cycles"] == 1

    def test_warm_started_engine_sees_no_cold_misses(self, weights, tmp_path):
        """The closed loop: ship an artifact from one engine's scheduler,
        warm-start a second engine with it — its traffic is warm."""
        art_dir = tmp_path / "retuned"
        with api.open_engine(
            device="A100", retune=quiet_policy(artifact_dir=art_dir)
        ) as first:
            serve_widths(first, weights, (64, 128))
            cycle = first.retune.run_once()
            assert cycle.artifact is not None
        policy = quiet_policy(hot_share=1.0)
        with api.open_engine(
            device="A100", warm_start=cycle.artifact, retune=policy
        ) as second:
            cache = second.planner.cache
            cache.reset_counters()
            serve_widths(second, weights, (64, 128))
            assert cache.misses == 0
            follow_up = second.retune.run_once()
            assert follow_up.triggers == []

    def test_run_once_is_serialized(self, weights):
        with api.open_engine(device="A100", retune=quiet_policy()) as client:
            serve_widths(client, weights, (64,))
            results = []

            def cycle():
                results.append(client.retune.run_once())

            threads = [threading.Thread(target=cycle) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            assert len(results) == 4
            assert client.retune_status().cycles == 4


class TestProvenance:
    def test_artifact_manifest_names_the_snapshot(self, weights, tmp_path):
        art_dir = tmp_path / "retuned"
        with api.open_engine(
            device="A100", retune=quiet_policy(artifact_dir=art_dir)
        ) as client:
            serve_widths(client, weights, (64,))
            snap = client.telemetry.snapshot()
            cycle = client.retune.run_once()
        assert cycle.artifact is not None and cycle.artifact.exists()
        manifest = ArtifactManifest.load(manifest_path(cycle.artifact))
        retune = manifest.sweep["retune"]
        assert retune["snapshot"] == snap.fingerprint
        assert retune["cycle"] == 1
        assert [t["plan_key"] for t in retune["triggers"]] == [
            t.plan_key for t in cycle.triggers
        ]
        assert manifest.plans == cycle.promoted
        # the shipped cache itself is a loadable schema-v2 artifact
        payload = json.loads(cycle.artifact.read_text())
        assert payload["version"] == 2

    def test_sequential_promotions_ship_numbered_artifacts(
        self, weights, tmp_path
    ):
        art_dir = tmp_path / "retuned"
        with api.open_engine(
            device="A100", retune=quiet_policy(artifact_dir=art_dir)
        ) as client:
            serve_widths(client, weights, (64,))
            c1 = client.retune.run_once()
            serve_widths(client, weights, (256,))
            c2 = client.retune.run_once()
        assert c1.artifact.parent.name == "retune-0001"
        assert c2.artifact.parent.name == "retune-0002"
        assert [t.plan_key for t in c2.triggers] != []


class TestBackgroundThread:
    def test_timer_thread_runs_cycles(self, weights):
        policy = quiet_policy(interval_s=0.05)
        with api.open_engine(device="A100", retune=policy) as client:
            serve_widths(client, weights, (64,))
            deadline = threading.Event()
            for _ in range(100):
                if client.retune_status().cycles >= 1:
                    break
                deadline.wait(0.05)
            status = client.retune_status()
            assert status.cycles >= 1
            assert status.last_error is None

    def test_stop_is_idempotent(self):
        client = api.open_engine(device="A100", retune=quiet_policy())
        client.retune.stop()
        client.retune.stop()
        client.close()  # close after manual stop is still clean


class TestSterileRetuneBackoff:
    def test_unchanged_retune_backs_off_beyond_cooldown(self, weights):
        """A re-tune that reproduces the identical plan doubles the key's
        effective cooldown: re-sweeping it cannot change anything, so the
        scheduler must not burn its budget on it every cooldown period."""
        import time

        policy = quiet_policy(cooldown_s=0.5)
        with api.open_engine(device="A100", retune=policy) as client:
            serve_widths(client, weights, (64,))
            first = client.retune.run_once()
            assert first.promoted == 1
            assert first.changed == 0  # live plan reproduced: sterile
            key = first.triggers[0].plan_key
            assert client.retune._unchanged_streak[key] == 1
            # past the base cooldown but inside the doubled window
            time.sleep(0.6)
            second = client.retune.run_once()
            assert second.triggers == []

    def test_skipped_keys_cool_down_too(self, weights):
        """Unsweepable (multi-backend) keys must not occupy trigger slots
        on every cycle."""
        from repro.serve.planner import Plan

        policy = quiet_policy(cooldown_s=3600.0)
        with api.open_engine(device="A100", retune=policy) as client:
            key = ("spmm|512x512|n=64|v=8|s=0.900|"
                   "magicube-emulation+cublas-fp16@A100|latency[L8-16,R8-16]")
            client.telemetry.record_batch(
                "ffn", "spmm", 1e-3, [0.0], backend="magicube-emulation",
                device="A100", plan_key=key, predicted_time_s=1e-3,
            )
            first = client.retune.run_once()
            assert [k for k, _ in first.skipped] == [key]
            assert first.promoted == 0
            second = client.retune.run_once()
            assert second.triggers == []  # cooled down, not spamming


class TestFailedCycle:
    def test_failing_retune_cools_down_and_is_recorded(self, weights):
        """A cycle whose targeted sweep raises must not hot-retry the
        identical failing sweep on the next wake-up, and the failure is
        visible in the status."""
        policy = quiet_policy(cooldown_s=3600.0)
        with api.open_engine(device="A100", retune=policy) as client:
            key = ("spmm|512x512|n=64|v=8|s=0.900|"
                   "ghost-backend@A100|latency[L8-16,R8-16]")
            client.telemetry.record_batch(
                "ffn", "spmm", 1e-3, [0.0], backend="ghost-backend",
                device="A100", plan_key=key, predicted_time_s=1e-3,
            )
            with pytest.raises(Exception):
                client.retune.run_once()
            status = client.retune_status()
            assert status.cycles == 1  # the failed cycle is accounted
            assert status.last_cycle["error"] is not None
            # the failing key is under cooldown: no immediate retry
            second = client.retune.run_once()
            assert second.triggers == []
            assert second.error is None
