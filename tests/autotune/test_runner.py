"""Measurement runner: stats, budgets, cost-model-guided pruning."""

import pytest

from repro.autotune.runner import SweepBudget, run_sweep
from repro.autotune.space import SweepConfig
from repro.errors import SweepError

FOUR_SHAPES = ((512, 512, 32), (512, 512, 64), (512, 512, 96), (512, 512, 128))


def fake_config(**overrides) -> SweepConfig:
    defaults = dict(
        ops=("spmm",),
        shapes=FOUR_SHAPES,
        devices=("A100",),
        backends=("fake-fast", "fake-slow"),
        min_bits=((8, 8),),
    )
    defaults.update(overrides)
    return SweepConfig(**defaults)


class TestMeasurement:
    def test_every_point_measured_and_shipped(self, fake_backends):
        report = run_sweep(fake_config(), warmup=0, repeats=2, prune_ratio=None)
        assert len(report.measurements) == 8
        assert len(report.cache) == 8
        assert report.pruned == [] and report.skipped == [] and report.failed == []

    def test_measurement_carries_search_statistics(self, fake_backends):
        report = run_sweep(
            fake_config(shapes=FOUR_SHAPES[:1]), warmup=1, repeats=3,
            prune_ratio=None,
        )
        m = report.measurements[0]
        assert m.repeats == 3
        assert 0 < m.search_s_min <= m.search_s_median
        assert m.plan_key in report.cache
        assert m.precision == "L8-R8"

    def test_shipped_plans_hit_under_the_predicted_key(self, fake_backends):
        """The runner's key contract: artifact keys == serving keys."""
        report = run_sweep(
            fake_config(shapes=FOUR_SHAPES[:1]), warmup=0, repeats=1,
            prune_ratio=None,
        )
        for m in report.measurements:
            assert report.cache.peek(m.point.plan_key) is not None

    def test_caller_supplied_empty_cache_is_used(self, fake_backends):
        """An empty (falsy: PlanCache has __len__) cache still receives
        the sweep's plans — e.g. a path-backed cache to save() later."""
        from repro.serve.cache import PlanCache

        shared = PlanCache()
        report = run_sweep(
            fake_config(shapes=FOUR_SHAPES[:1]), warmup=0, repeats=1,
            prune_ratio=None, cache=shared,
        )
        assert report.cache is shared
        assert len(shared) == 2

    def test_validation(self, fake_backends):
        with pytest.raises(SweepError):
            run_sweep(fake_config(), repeats=0)
        with pytest.raises(SweepError):
            run_sweep(fake_config(), warmup=-1)
        with pytest.raises(SweepError):
            run_sweep(fake_config(), prune_ratio=0.5)


class TestBudget:
    def test_trial_budget_skips_the_tail(self, fake_backends):
        report = run_sweep(
            fake_config(), budget=SweepBudget(max_trials=3),
            warmup=0, repeats=1, prune_ratio=None,
        )
        assert len(report.measurements) == 3
        assert len(report.skipped) == 5
        assert all("trial budget" in reason for _, reason in report.skipped)
        assert report.points_total == 8

    def test_time_budget_is_honoured(self, fake_backends):
        # an already-expired clock budget measures nothing
        report = run_sweep(
            fake_config(), budget=SweepBudget(max_seconds=1e-9),
            warmup=0, repeats=1, prune_ratio=None,
        )
        assert report.measurements == []
        assert len(report.skipped) == 8

    def test_budget_validation(self):
        with pytest.raises(SweepError):
            SweepBudget(max_trials=0)
        with pytest.raises(SweepError):
            SweepBudget(max_seconds=0)


class TestPruning:
    def test_consistent_loser_is_pruned(self, fake_backends):
        """fake-slow loses 10x on every cell; after 2 losses it is cut."""
        report = run_sweep(
            fake_config(), warmup=0, repeats=1,
            prune_ratio=4.0, prune_after=2,
        )
        measured = [m.point.backend for m in report.measurements]
        assert measured.count("fake-fast") == 4
        assert measured.count("fake-slow") == 2  # the two probing losses
        assert len(report.pruned) == 2
        assert all(p.backend == "fake-slow" for p, _ in report.pruned)
        assert all("cost model" in reason for _, reason in report.pruned)

    def test_close_competitor_is_never_pruned(self, fake_backends):
        fast, slow = fake_backends
        slow.time_s = fast.time_s * 2  # inside the 4x ratio
        report = run_sweep(
            fake_config(), warmup=0, repeats=1,
            prune_ratio=4.0, prune_after=2,
        )
        assert report.pruned == []
        assert len(report.measurements) == 8

    def test_pruning_disabled_measures_everything(self, fake_backends):
        report = run_sweep(fake_config(), warmup=0, repeats=1, prune_ratio=None)
        assert len(report.measurements) == 8

    def test_report_summary_accounts_every_point(self, fake_backends):
        report = run_sweep(
            fake_config(), budget=SweepBudget(max_trials=5),
            warmup=0, repeats=1, prune_ratio=4.0, prune_after=2,
        )
        s = report.summary()
        assert s["measured"] + s["pruned"] + s["skipped"] + s["failed"] == 8
        assert s["plans"] == s["measured"]
