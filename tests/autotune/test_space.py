"""Sweep space: registry-driven enumeration, determinism, filters."""

import pytest

from repro.autotune.space import DEFAULT_SHAPES, SweepConfig, SweepPoint, enumerate_space
from repro.errors import SweepError
from repro.serve.planner import ExecutionPlanner, Objective


class TestConfig:
    def test_round_trips_through_dict(self):
        config = SweepConfig(
            ops=("spmm", "sddmm"),
            shapes=((256, 512, 64),),
            vector_lengths=(2, 8),
            sparsities=(0.7, 0.9),
            backends=("magicube-emulation",),
            devices=("A100", "H100"),
            min_bits=((8, 8),),
        )
        assert SweepConfig.from_dict(config.to_dict()) == config

    def test_default_round_trip(self):
        assert SweepConfig.from_dict(SweepConfig().to_dict()) == SweepConfig()

    def test_objective_grid_mirrors_min_bits(self):
        config = SweepConfig(min_bits=((4, 4), (8, 8)))
        tokens = [o.token for o in config.objectives()]
        assert tokens == ["latency[L4-16,R4-16]", "latency[L8-16,R8-16]"]

    def test_accuracy_objective_carries_budget(self):
        config = SweepConfig(
            objective="accuracy", latency_budget_s=1e-5, min_bits=((4, 4),)
        )
        (obj,) = config.objectives()
        assert obj.kind == "accuracy"
        assert obj.latency_budget_s == 1e-5

    def test_bad_objective_rejected(self):
        with pytest.raises(SweepError):
            SweepConfig(objective="vibes")

    def test_bad_op_rejected(self):
        with pytest.raises(SweepError):
            SweepConfig(ops=("conv2d",))

    def test_empty_axis_rejected(self):
        with pytest.raises(SweepError):
            SweepConfig(shapes=())


class TestEnumeration:
    CONFIG = SweepConfig(devices=("A100",), min_bits=((8, 8),))

    def test_same_registry_same_ordered_grid(self):
        first = enumerate_space(self.CONFIG)
        second = enumerate_space(self.CONFIG)
        assert first == second
        assert len(first) > 0

    def test_backends_enumerate_in_priority_order(self):
        points = enumerate_space(self.CONFIG)
        per_shape = [p.backend for p in points if (p.rows, p.cols, p.inner) ==
                     DEFAULT_SHAPES[0]]
        # magicube-emulation has the best priority of the plannable set
        assert per_shape[0] == "magicube-emulation"
        assert per_shape.index("magicube-strict") == len(per_shape) - 1

    def test_registering_a_backend_grows_the_space(self, fake_backends):
        fast, _slow = fake_backends
        points = enumerate_space(self.CONFIG)
        assert any(p.backend == fast.name for p in points)

    def test_explicit_backend_list_restricts_and_orders(self):
        config = SweepConfig(
            devices=("A100",), min_bits=((8, 8),),
            backends=("magicube-strict", "magicube-emulation"),
        )
        backends = [p.backend for p in enumerate_space(config)]
        assert set(backends) == {"magicube-strict", "magicube-emulation"}
        assert backends[0] == "magicube-strict"  # config order, not priority

    def test_indivisible_vector_length_is_filtered(self):
        config = SweepConfig(
            devices=("A100",), shapes=((100, 512, 64),), vector_lengths=(8,),
            min_bits=((8, 8),),
        )
        with pytest.raises(SweepError):
            enumerate_space(config)

    def test_device_support_is_filtered(self):
        # V100 has no int8/int4 Tensor cores: no magicube cells there
        config = SweepConfig(
            devices=("V100",), backends=("magicube-emulation",),
            min_bits=((8, 8),),
        )
        with pytest.raises(SweepError):
            enumerate_space(config)


class TestPlanKeyContract:
    def test_point_key_matches_planner_key(self):
        """A SweepPoint predicts exactly the key the planner memoizes."""
        point = SweepPoint(
            op="spmm", rows=512, cols=512, inner=64, vector_length=8,
            sparsity=0.9, backend="magicube-emulation", device="A100",
            objective=Objective.latency(min_l_bits=8, min_r_bits=8),
        )
        planner = ExecutionPlanner(device="A100")
        plan = planner.plan_spmm(
            512, 512, 64, 8, 0.9, point.objective, backend=point.backend
        )
        assert plan.key == point.plan_key
