"""Retune policy: trigger evaluation and targeted-space synthesis."""

import pytest

from repro.autotune.policy import (
    RetunePolicy,
    RetuneTrigger,
    evaluate_snapshot,
    synthesize,
)
from repro.autotune.space import enumerate_space
from repro.errors import ConfigError
from repro.serve.planner import Objective, PlanKey
from repro.serve.telemetry import TelemetrySnapshot


def key_for(n=64, backend="magicube-emulation", device="A100",
            objective=None, op="spmm") -> str:
    obj = objective if objective is not None else Objective.latency(8, 8)
    return str(PlanKey(
        op=op, rows=512, cols=512, inner=n, vector_length=8, sparsity=0.9,
        backend=backend, device=device, objective=obj.token,
    ))


def snapshot_for(plans: dict, requests: int | None = None) -> TelemetrySnapshot:
    total = requests if requests is not None else sum(
        p.get("requests", 0) for p in plans.values()
    )
    return TelemetrySnapshot(
        requests=total, sessions={}, backends={}, plans=plans,
        rejections={}, total={"requests": total},
    )


def plan_stats(requests=10, launches=None, busy=None, predicted=1e-6,
               batches=None) -> dict:
    batches = batches if batches is not None else requests
    launches = launches if launches is not None else batches
    busy = busy if busy is not None else predicted * launches
    return {
        "requests": requests, "batches": batches, "launches": launches,
        "modelled_busy_s": busy, "predicted_time_s": predicted,
        "backend": "magicube-emulation", "device": "A100",
    }


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        RetunePolicy()

    @pytest.mark.parametrize("kwargs", [
        {"interval_s": 0}, {"hot_share": 0.0}, {"hot_share": 1.5},
        {"regression_ratio": 1.0}, {"max_keys": 0}, {"cooldown_s": -1},
        {"min_requests": -1}, {"repeats": 0}, {"warmup": -1},
    ])
    def test_bad_knobs_raise(self, kwargs):
        with pytest.raises(ConfigError):
            RetunePolicy(**kwargs)


class TestEvaluate:
    def test_below_min_requests_is_quiet(self):
        snap = snapshot_for({key_for(): plan_stats(requests=3)})
        policy = RetunePolicy(min_requests=10)
        assert evaluate_snapshot(snap, policy) == []

    def test_hot_key_triggers_by_traffic_share(self):
        hot, cold = key_for(64), key_for(128)
        snap = snapshot_for({
            hot: plan_stats(requests=90),
            cold: plan_stats(requests=10),
        })
        policy = RetunePolicy(min_requests=1, hot_share=0.5,
                              retune_cold_misses=False)
        triggers = evaluate_snapshot(snap, policy)
        assert [t.plan_key for t in triggers] == [hot]
        assert triggers[0].reason == "hot"
        assert triggers[0].share == pytest.approx(0.9)

    def test_cold_miss_vs_baseline(self):
        warm, missed = key_for(64), key_for(128)
        snap = snapshot_for({
            warm: plan_stats(requests=10),
            missed: plan_stats(requests=10),
        })
        policy = RetunePolicy(min_requests=1, hot_share=1.0)
        triggers = evaluate_snapshot(
            snap, policy, baseline_keys=frozenset({warm})
        )
        assert [t.plan_key for t in triggers] == [missed]
        assert triggers[0].reason == "cold-miss"

    def test_regression_vs_recorded_estimate(self):
        regressed, fine = key_for(64), key_for(128)
        snap = snapshot_for({
            regressed: plan_stats(requests=10, predicted=1e-6, busy=3e-5),
            fine: plan_stats(requests=10, predicted=1e-6),
        })
        policy = RetunePolicy(min_requests=1, hot_share=1.0,
                              regression_ratio=2.0, retune_cold_misses=False)
        triggers = evaluate_snapshot(snap, policy)
        assert [t.plan_key for t in triggers] == [regressed]
        assert triggers[0].reason == "regression"
        assert "3.00x" in triggers[0].detail

    def test_regression_uses_launches_not_batches(self):
        """An SDDMM dispatch sums item launches; observed per-launch time
        must not be mistaken for a regression."""
        key = key_for(64, op="sddmm")
        snap = snapshot_for({
            key: plan_stats(requests=8, batches=2, launches=8,
                            predicted=1e-6, busy=8e-6),
            key_for(128): plan_stats(requests=8, predicted=1e-6),
        })
        policy = RetunePolicy(min_requests=1, hot_share=1.0,
                              regression_ratio=1.5, retune_cold_misses=False)
        assert evaluate_snapshot(snap, policy) == []

    def test_drift_marks_served_keys(self):
        keys = [key_for(64), key_for(128)]
        snap = snapshot_for({k: plan_stats(requests=10) for k in keys})
        policy = RetunePolicy(min_requests=1, hot_share=1.0,
                              retune_cold_misses=False)
        triggers = evaluate_snapshot(
            snap, policy, baseline_keys=frozenset(keys),
            drift=["backend 'x' changed since the sweep"],
        )
        assert sorted(t.plan_key for t in triggers) == sorted(keys)
        assert {t.reason for t in triggers} == {"drift"}
        no_drift = evaluate_snapshot(
            snap, policy, baseline_keys=frozenset(keys)
        )
        assert no_drift == []

    def test_exclude_implements_cooldown(self):
        key = key_for()
        snap = snapshot_for({key: plan_stats(requests=10)})
        policy = RetunePolicy(min_requests=1, hot_share=0.1)
        assert evaluate_snapshot(snap, policy, exclude={key}) == []

    def test_max_keys_caps_by_traffic_share(self):
        keys = {key_for(n): plan_stats(requests=10 * (i + 1))
                for i, n in enumerate((32, 64, 128, 256))}
        snap = snapshot_for(keys)
        policy = RetunePolicy(min_requests=1, hot_share=0.01, max_keys=2)
        triggers = evaluate_snapshot(snap, policy)
        assert len(triggers) == 2
        shares = [t.share for t in triggers]
        assert shares == sorted(shares, reverse=True)

    def test_deterministic_ordering(self):
        keys = {key_for(n): plan_stats(requests=10) for n in (64, 128, 256)}
        snap = snapshot_for(keys)
        policy = RetunePolicy(min_requests=1, hot_share=0.01)
        a = evaluate_snapshot(snap, policy)
        b = evaluate_snapshot(snap, policy)
        assert a == b


def health_report(kind="latency", breaching=True):
    """A real HealthReport graded from a synthetic registry."""
    from repro.obs import names
    from repro.obs.health import SloSpec, evaluate_registry
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.names import declare_standard

    registry = declare_standard(MetricsRegistry())
    if kind == "latency":
        wall = registry.histogram(names.REQUEST_WALL)
        for _ in range(20):
            wall.observe(2.0 if breaching else 0.001)
        spec = SloSpec(name="wall-p95", kind="latency", objective=0.25)
    else:
        registry.counter(names.REQUESTS, {"session": "s"}).inc(100)
        registry.counter(names.REJECTIONS, {"session": "s"}).inc(
            50 if breaching else 0
        )
        spec = SloSpec(name="shed", kind="rejection_rate", objective=0.05)
    return evaluate_registry(registry, (spec,))


class TestSloBreachTrigger:
    def _quiet_policy(self, **kwargs):
        # no other trigger can fire: warm baseline, no hot share reached
        return RetunePolicy(
            min_requests=1, hot_share=1.0, retune_cold_misses=False, **kwargs
        )

    def test_latency_breach_marks_served_keys(self):
        keys = [key_for(64), key_for(128)]
        snap = snapshot_for({k: plan_stats(requests=10) for k in keys})
        triggers = evaluate_snapshot(
            snap, self._quiet_policy(), health=health_report("latency")
        )
        assert sorted(t.plan_key for t in triggers) == sorted(keys)
        assert {t.reason for t in triggers} == {"slo-breach"}
        assert all("wall-p95" in t.detail for t in triggers)

    def test_healthy_report_triggers_nothing(self):
        # requests=100 keeps the key's share below hot_share
        snap = snapshot_for({key_for(): plan_stats(requests=10)}, requests=100)
        report = health_report("latency", breaching=False)
        assert report.status == "healthy"
        assert evaluate_snapshot(
            snap, self._quiet_policy(), health=report
        ) == []

    def test_non_latency_breach_does_not_retune(self):
        # a rejection-rate breach means admission pressure, not a stale
        # plan: re-sweeping would not help, so the trigger ignores it
        snap = snapshot_for({key_for(): plan_stats(requests=10)}, requests=100)
        report = health_report("rejection_rate")
        assert report.status == "breach"
        assert evaluate_snapshot(
            snap, self._quiet_policy(), health=report
        ) == []

    def test_toggle_off_suppresses_the_trigger(self):
        snap = snapshot_for({key_for(): plan_stats(requests=10)}, requests=100)
        policy = self._quiet_policy(retune_on_slo_breach=False)
        assert evaluate_snapshot(
            snap, policy, health=health_report("latency")
        ) == []

    def test_regression_outranks_slo_breach(self):
        key = key_for()
        snap = snapshot_for({
            key: plan_stats(requests=10, predicted=1e-6, busy=3e-5),
        })
        policy = self._quiet_policy(regression_ratio=2.0)
        (trigger,) = evaluate_snapshot(
            snap, policy, health=health_report("latency")
        )
        assert trigger.reason == "regression"
        assert "slo-breach" in trigger.detail  # still named in the detail

    def test_slo_breach_outranks_cold_miss(self):
        key = key_for()
        snap = snapshot_for({key: plan_stats(requests=10)})
        policy = RetunePolicy(min_requests=1, hot_share=1.0)
        (trigger,) = evaluate_snapshot(
            snap, policy, health=health_report("latency")
        )
        assert trigger.reason == "slo-breach"
        assert "cold-miss" in trigger.detail

    def test_slo_knob_validation(self):
        with pytest.raises(ConfigError):
            RetunePolicy(slo_window_s=0.0)
        from repro.obs.health import SloSpec

        spec = SloSpec(name="lat", kind="latency", objective=0.25)
        policy = RetunePolicy(slos=[spec])  # lists coerce to tuple
        assert policy.slos == (spec,)


class TestSynthesize:
    def trigger(self, key: str) -> RetuneTrigger:
        return RetuneTrigger(plan_key=key, reason="hot", detail="", share=0.5)

    def test_targeted_config_reproduces_exact_keys(self):
        """The synthesized grid, filtered to the target keys, enumerates
        points whose plan_key round-trips exactly — the contract that
        makes a promoted plan *hit* at serving time."""
        keys = [key_for(64), key_for(128)]
        targets, skipped = synthesize([self.trigger(k) for k in keys])
        assert skipped == []
        assert len(targets) == 1
        target = targets[0]
        assert target.keys == frozenset(keys)
        enumerated = {
            p.plan_key for p in enumerate_space(target.config)
        }
        assert frozenset(keys) <= enumerated

    def test_fixed_precision_objective_round_trips(self):
        """Objective.fixed pins max bits too — max_bits carries it."""
        key = key_for(64, objective=Objective.fixed(8, 8))
        targets, skipped = synthesize([self.trigger(key)])
        assert skipped == []
        config = targets[0].config
        assert config.min_bits == ((8, 8),)
        assert config.max_bits == ((8, 8),)
        assert key in {p.plan_key for p in enumerate_space(config)}

    def test_objective_kinds_group_separately(self):
        latency = key_for(64)
        accuracy = key_for(
            128, objective=Objective.accuracy(min_l_bits=8, min_r_bits=8)
        )
        targets, skipped = synthesize(
            [self.trigger(latency), self.trigger(accuracy)]
        )
        assert skipped == []
        assert len(targets) == 2
        assert {t.config.objective for t in targets} == {"latency", "accuracy"}

    def test_multi_backend_keys_are_skipped_with_reason(self):
        key = key_for(backend="magicube-emulation+cublas-fp16")
        targets, skipped = synthesize([self.trigger(key)])
        assert targets == []
        assert len(skipped) == 1
        assert "multi-backend" in skipped[0][1]

    def test_unparseable_keys_are_skipped_with_reason(self):
        targets, skipped = synthesize([self.trigger("not|a|plan|key")])
        assert targets == []
        assert "unparseable" in skipped[0][1]
