"""End-to-end warm start: sweep offline, serve warm, hit on first contact."""

import numpy as np
import pytest

from repro.autotune import ArtifactManifest, SweepConfig, run_sweep, write_artifact
from repro.core.api import SparseMatrix
from repro.serve.engine import Engine
from repro.serve.planner import ExecutionPlanner, Objective

pytestmark = [
    pytest.mark.legacy,
    pytest.mark.filterwarnings("ignore::DeprecationWarning"),
]

WIDTHS = (16, 32)


@pytest.fixture(scope="module")
def weights() -> SparseMatrix:
    rng = np.random.default_rng(7)
    dense = rng.integers(-127, 128, size=(64, 64))
    dense[np.abs(dense) < 100] = 0  # sparse-ish, still full int8 range
    return SparseMatrix.from_dense(dense, vector_length=8)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory, weights):
    """Sweep exactly the request classes the engine tests will send."""
    with Engine(device="A100") as probe:
        session = probe.spmm_session("probe", weights, vector_length=8)
        weight_bits = session.weight_bits
    config = SweepConfig(
        ops=("spmm",),
        shapes=tuple((64, 64, n) for n in WIDTHS),
        vector_lengths=(8,),
        sparsities=(weights.sparsity,),
        devices=("A100",),
        backends=("magicube-emulation",),
        min_bits=((weight_bits, 8),),
    )
    report = run_sweep(config, warmup=0, repeats=1, prune_ratio=None)
    path = tmp_path_factory.mktemp("autotune") / "plans.json"
    write_artifact(path, report.cache, ArtifactManifest.for_report(report))
    return path


class TestPlannerWarmStart:
    def test_preloads_and_counts(self, artifact):
        planner = ExecutionPlanner(device="A100", warm_start=str(artifact))
        assert len(planner.cache) == len(WIDTHS)

    def test_warm_start_method_returns_loaded_count(self, artifact):
        planner = ExecutionPlanner(device="A100")
        assert planner.warm_start(str(artifact)) == len(WIDTHS)


class TestEngineWarmStart:
    def test_first_contact_hit_rate_at_least_half(self, artifact, weights):
        """The ISSUE acceptance gate: >=50% hits on first contact."""
        with Engine(device="A100", warm_start=artifact) as engine:
            session = engine.spmm_session("ffn", weights, vector_length=8)
            engine.planner.cache.reset_counters()
            for n in WIDTHS:
                session.plan_for(n, 8)
            stats = engine.planner.cache.stats()
        assert stats["hits"] + stats["misses"] == len(WIDTHS)
        assert stats["hit_rate"] >= 0.5
        # in fact every swept class hits
        assert stats["hit_rate"] == 1.0

    def test_cold_engine_misses_the_same_classes(self, weights):
        with Engine(device="A100") as engine:
            session = engine.spmm_session("ffn", weights, vector_length=8)
            engine.planner.cache.reset_counters()
            for n in WIDTHS:
                session.plan_for(n, 8)
            stats = engine.planner.cache.stats()
        assert stats["hit_rate"] == 0.0

    def test_warm_served_output_matches_direct_path(self, artifact, weights):
        """Warm-start plans serve bit-identical outputs."""
        from repro.core.api import spmm as direct_spmm

        rng = np.random.default_rng(3)
        rhs = rng.integers(-128, 128, size=(64, WIDTHS[0]))
        with Engine(device="A100", warm_start=artifact) as engine:
            session = engine.spmm_session("ffn", weights, vector_length=8)
            served = session.run(rhs, r_bits=8)
        direct = direct_spmm(
            weights, rhs, precision=served.plan.precision, device="A100"
        )
        assert np.array_equal(served.output, direct.output)

    def test_unswept_class_still_plans(self, artifact, weights):
        """Warm start never blocks classes outside the sweep grid."""
        with Engine(device="A100", warm_start=artifact) as engine:
            session = engine.spmm_session("ffn", weights, vector_length=8)
            plan = session.plan_for(48, 8)  # width not in the sweep
        assert plan.predicted_time_s > 0
