"""Artifacts: manifest round-trip, fingerprints, drift detection."""

import json

import pytest

from repro.autotune.artifact import (
    ArtifactManifest,
    backend_fingerprint,
    check_drift,
    device_fingerprint,
    load_artifact,
    manifest_path,
    warm_start_cache,
    write_artifact,
)
from repro.autotune.runner import run_sweep
from repro.autotune.space import SweepConfig
from repro.errors import PlanCacheError
from repro.runtime import REGISTRY
from repro.serve.cache import PlanCache


def small_report(fake_backends=None):
    backends = ("fake-fast",) if fake_backends else ("magicube-emulation",)
    config = SweepConfig(
        shapes=((512, 512, 64),), devices=("A100",), backends=backends,
        min_bits=((8, 8),),
    )
    return run_sweep(config, warmup=0, repeats=1, prune_ratio=None)


class TestFingerprints:
    def test_backend_fingerprint_is_stable(self):
        backend = REGISTRY.get("magicube-emulation")
        assert backend_fingerprint(backend) == backend_fingerprint(backend)

    def test_backend_fingerprint_distinguishes_backends(self):
        a = backend_fingerprint(REGISTRY.get("magicube-emulation"))
        b = backend_fingerprint(REGISTRY.get("cublas-fp16"))
        assert a != b

    def test_device_fingerprint_distinguishes_devices(self):
        assert device_fingerprint("A100") != device_fingerprint("H100")


class TestRoundTrip:
    def test_empty_sweep_claims_no_provenance(self):
        """A budget-starved sweep must not fingerprint the whole
        registry — its manifest covers exactly what was measured."""
        from repro.autotune.runner import SweepBudget

        config = SweepConfig(
            shapes=((512, 512, 64),), devices=("A100",),
            backends=("magicube-emulation",), min_bits=((8, 8),),
        )
        report = run_sweep(
            config, budget=SweepBudget(max_seconds=1e-9),
            warmup=0, repeats=1,
        )
        assert report.measurements == []
        manifest = ArtifactManifest.for_report(report)
        assert manifest.backends == {} and manifest.devices == {}
        assert check_drift(manifest) == []

    def test_write_then_load(self, tmp_path):
        report = small_report()
        manifest = ArtifactManifest.for_report(report)
        plans_path, mpath = write_artifact(
            tmp_path / "plans.json", report.cache, manifest
        )
        assert plans_path.exists() and mpath.exists()
        assert mpath == manifest_path(plans_path)
        loaded_cache, loaded_manifest = load_artifact(plans_path)
        assert sorted(loaded_cache.keys()) == sorted(report.cache.keys())
        assert loaded_manifest.plans == len(report.cache)
        assert "magicube-emulation" in loaded_manifest.backends
        assert "A100" in loaded_manifest.devices
        assert loaded_manifest.sweep["measured"] == len(report.measurements)
        assert loaded_manifest.measurements[0]["plan_key"] in loaded_cache

    def test_plans_file_is_schema_v2(self, tmp_path):
        report = small_report()
        plans_path, _ = write_artifact(tmp_path / "plans.json", report.cache)
        payload = json.loads(plans_path.read_text())
        assert payload["version"] == 2
        # loadable by a bare PlanCache, no autotune involved
        assert PlanCache().load(plans_path) == len(report.cache)

    def test_missing_manifest_loads_as_none(self, tmp_path):
        report = small_report()
        plans_path, mpath = write_artifact(tmp_path / "plans.json", report.cache)
        mpath.unlink()
        _, manifest = load_artifact(plans_path)
        assert manifest is None

    def test_unsupported_manifest_schema_rejected(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"schema": 99}))
        with pytest.raises(PlanCacheError):
            ArtifactManifest.load(path)

    def test_corrupt_manifest_raises_typed_error(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("{not json")
        with pytest.raises(PlanCacheError):
            ArtifactManifest.load(path)


class TestDrift:
    def _artifact(self, tmp_path):
        report = small_report()
        manifest = ArtifactManifest.for_report(report)
        return write_artifact(tmp_path / "plans.json", report.cache, manifest)

    def test_no_drift_against_the_producing_registry(self, tmp_path):
        plans_path, _ = self._artifact(tmp_path)
        _, manifest = load_artifact(plans_path)
        assert check_drift(manifest) == []

    def test_changed_fingerprint_is_flagged(self, tmp_path):
        plans_path, mpath = self._artifact(tmp_path)
        payload = json.loads(mpath.read_text())
        payload["backends"]["magicube-emulation"] = "deadbeefcafe"
        mpath.write_text(json.dumps(payload))
        _, manifest = load_artifact(plans_path)
        drift = check_drift(manifest)
        assert len(drift) == 1
        assert "magicube-emulation" in drift[0] and "changed" in drift[0]

    def test_unregistered_backend_is_flagged(self, tmp_path):
        plans_path, mpath = self._artifact(tmp_path)
        payload = json.loads(mpath.read_text())
        payload["backends"]["ghost-backend"] = "deadbeefcafe"
        mpath.write_text(json.dumps(payload))
        _, manifest = load_artifact(plans_path)
        drift = check_drift(manifest)
        assert any("ghost-backend" in line and "no longer registered" in line
                   for line in drift)

    def test_unknown_device_is_flagged(self, tmp_path):
        plans_path, mpath = self._artifact(tmp_path)
        payload = json.loads(mpath.read_text())
        payload["devices"]["B200"] = "deadbeefcafe"
        mpath.write_text(json.dumps(payload))
        _, manifest = load_artifact(plans_path)
        assert any("B200" in line for line in check_drift(manifest))


class TestWarmStartCache:
    def test_merges_plans_without_overwriting(self, tmp_path):
        report = small_report()
        plans_path, _ = write_artifact(tmp_path / "plans.json", report.cache)
        cache = PlanCache()
        assert warm_start_cache(cache, plans_path) == len(report.cache)
        # idempotent: already-present keys are not double-counted
        assert warm_start_cache(cache, plans_path) == 0

    def test_drifted_manifest_warns_but_loads(self, tmp_path):
        report = small_report()
        manifest = ArtifactManifest.for_report(report)
        manifest.backends["magicube-emulation"] = "deadbeefcafe"
        plans_path, _ = write_artifact(
            tmp_path / "plans.json", report.cache, manifest
        )
        cache = PlanCache()
        with pytest.warns(RuntimeWarning, match="drifted"):
            loaded = warm_start_cache(cache, plans_path)
        assert loaded == len(report.cache)

    def test_corrupt_artifact_warns_and_skips(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text("{torn write")
        cache = PlanCache()
        with pytest.warns(RuntimeWarning, match="skipping"):
            assert warm_start_cache(cache, path) == 0
        assert len(cache) == 0
