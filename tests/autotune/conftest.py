"""Shared fixtures: controllable plannable backends in the live registry.

The measurement runner resolves backend names through the process-wide
registry (the same path serving takes), so fake backends register
globally and the fixture guarantees cleanup.
"""

import pytest

from repro.runtime import (
    REGISTRY,
    Backend,
    BackendCapabilities,
    Candidate,
    ExecutionResult,
)


class FakePlannableBackend(Backend):
    """A plannable backend whose candidate cost is a constant."""

    def __init__(self, name: str, priority: int, time_s: float) -> None:
        self.name = name
        self.priority = priority
        self.time_s = time_s
        self.planned = 0

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(ops=("spmm",), precisions=("int8",))

    def execute(self, op, device, config=None, **operands) -> ExecutionResult:
        raise NotImplementedError

    def plan_candidates(self, problem, device, admits=None):
        self.planned += 1
        if admits is not None and not admits(8, 8):
            return []
        return [Candidate("L8-R8", 8, 8, {"bsn": 64}, self.time_s)]


@pytest.fixture
def fake_backends():
    """Register a fast and a 10x-slower fake backend; unregister after."""
    fast = FakePlannableBackend("fake-fast", 1, 1e-6)
    slow = FakePlannableBackend("fake-slow", 2, 1e-5)
    REGISTRY.register(fast.name, fast)
    REGISTRY.register(slow.name, slow)
    try:
        yield fast, slow
    finally:
        REGISTRY.unregister(fast.name)
        REGISTRY.unregister(slow.name)
