"""Tests for the pre-v1 kwarg API facade (now deprecation shims)."""

import numpy as np
import pytest

from repro import (
    Precision,
    PrecisionError,
    ShapeError,
    SparseMatrix,
    parse_precision,
    sddmm,
    spmm,
    supported_precisions,
)
from repro.formats import dense_to_bcrs
from tests.conftest import make_structured_sparse


pytestmark = [
    pytest.mark.legacy,
    pytest.mark.filterwarnings("ignore::DeprecationWarning"),
]


class TestPrecisionParsing:
    def test_parse_ok(self):
        p = parse_precision("L8-R4")
        assert (p.l_bits, p.r_bits) == (8, 4)
        assert p.name == "L8-R4"
        assert not p.is_native
        assert p.native_bits == 4

    def test_native(self):
        assert parse_precision("L8-R8").is_native
        assert parse_precision("L4-R4").is_native

    def test_bad_format(self):
        with pytest.raises(PrecisionError):
            parse_precision("8x4")

    def test_outside_table4(self):
        with pytest.raises(PrecisionError):
            parse_precision("L4-R8")
        with pytest.raises(PrecisionError):
            parse_precision("L16-R8", op="sddmm")

    def test_supported_lists(self):
        assert "L12-R4" in supported_precisions("spmm")
        assert supported_precisions("sddmm") == ["L16-R16", "L8-R8", "L4-R4"]


class TestSparseMatrix:
    def test_from_dense(self, rng):
        d = make_structured_sparse(rng, 32, 64, 8, 0.7)
        m = SparseMatrix.from_dense(d, vector_length=8)
        assert m.shape == (32, 64)
        assert m.vector_length == 8
        np.testing.assert_array_equal(m.to_dense(), d)

    def test_precision_sets_stride(self, rng):
        d = make_structured_sparse(rng, 16, 64, 8, 0.5, bits=4)
        m8 = SparseMatrix.from_dense(d, 8, precision="L8-R8")
        m4 = SparseMatrix.from_dense(d, 8, precision="L4-R4")
        assert m8.srbcrs.stride == 16
        assert m4.srbcrs.stride == 32

    def test_from_bcrs(self, rng):
        d = make_structured_sparse(rng, 16, 32, 4, 0.5)
        m = SparseMatrix.from_bcrs(dense_to_bcrs(d, 4))
        np.testing.assert_array_equal(m.to_dense(), d)

    def test_properties(self, rng):
        d = make_structured_sparse(rng, 16, 32, 8, 0.8)
        m = SparseMatrix.from_dense(d, 8)
        assert 0.5 < m.sparsity < 1.0
        assert m.nnz == int(
            (d.reshape(2, 8, 32).any(axis=1)).sum() * 8
        )


class TestSpmmApi:
    def test_end_to_end(self, rng):
        d = make_structured_sparse(rng, 32, 64, 8, 0.7)
        a = SparseMatrix.from_dense(d, 8)
        rhs = rng.integers(-128, 128, size=(64, 32))
        r = spmm(a, rhs, precision="L8-R8")
        np.testing.assert_array_equal(r.output, d.astype(np.int64) @ rhs)
        assert r.time_s > 0
        assert r.tops > 0

    def test_restride_on_precision_change(self, rng):
        d = make_structured_sparse(rng, 16, 64, 8, 0.5, bits=4)
        a = SparseMatrix.from_dense(d, 8, precision="L8-R8")  # stride 16
        rhs = rng.integers(-8, 8, size=(64, 16))
        r = spmm(a, rhs, precision="L4-R4")  # needs stride 32: restrides
        np.testing.assert_array_equal(r.output, d.astype(np.int64) @ rhs)

    def test_dequant_scale(self, rng):
        d = make_structured_sparse(rng, 16, 32, 8, 0.5)
        a = SparseMatrix.from_dense(d, 8)
        rhs = rng.integers(-128, 128, size=(32, 16))
        r = spmm(a, rhs, scale=0.5)
        np.testing.assert_allclose(r.output, (d.astype(np.int64) @ rhs) * 0.5)

    def test_ablation_knobs_accepted(self, rng):
        d = make_structured_sparse(rng, 16, 32, 8, 0.5)
        a = SparseMatrix.from_dense(d, 8)
        rhs = rng.integers(-128, 128, size=(32, 16))
        r = spmm(a, rhs, conflict_free=False, prefetch=False)
        assert r.stats.notes["variant"] == "basic"


class TestSddmmApi:
    def test_end_to_end(self, rng):
        mask_d = (make_structured_sparse(rng, 16, 32, 8, 0.5) != 0).astype(np.int32)
        mask = SparseMatrix.from_dense(mask_d, 8)
        a = rng.integers(-128, 128, size=(16, 64))
        b = rng.integers(-128, 128, size=(64, 32))
        r = sddmm(a, b, mask, precision="L8-R8")
        full = a.astype(np.int64) @ b
        got = r.output.to_dense()
        keep = got != 0
        np.testing.assert_array_equal(got[keep], full[keep])

    def test_mask_type_check(self, rng):
        with pytest.raises(ShapeError):
            sddmm(
                np.zeros((8, 16), dtype=np.int64),
                np.zeros((16, 8), dtype=np.int64),
                mask=np.zeros((8, 8)),
            )

    def test_device_selection(self, rng):
        mask_d = (make_structured_sparse(rng, 16, 32, 8, 0.5) != 0).astype(np.int32)
        mask = SparseMatrix.from_dense(mask_d, 8)
        a = rng.integers(-128, 128, size=(16, 64))
        b = rng.integers(-128, 128, size=(64, 32))
        t_a100 = sddmm(a, b, mask, device="A100").time_s
        t_h100 = sddmm(a, b, mask, device="H100").time_s
        assert t_h100 < t_a100  # H100: more SMs, higher bandwidth


class TestPrecisionObject:
    def test_dataclass_fields(self):
        p = Precision(l_bits=16, r_bits=4, op="spmm")
        assert p.native_bits == 4


class TestPlanInjection:
    """Pre-built configs (serving plans) bypass precision parsing."""

    def test_spmm_config_matches_precision_path(self, rng):
        from repro.kernels.spmm import SpMMConfig

        d = make_structured_sparse(rng, 32, 64, 8, 0.7)
        a = SparseMatrix.from_dense(d, 8)
        rhs = rng.integers(-128, 128, size=(64, 32))
        by_name = spmm(a, rhs, precision="L8-R8")
        by_config = spmm(a, rhs, config=SpMMConfig(l_bits=8, r_bits=8))
        np.testing.assert_array_equal(by_config.output, by_name.output)
        assert by_config.time_s == by_name.time_s

    def test_spmm_config_and_kwargs_conflict(self, rng):
        from repro.errors import ConfigError
        from repro.kernels.spmm import SpMMConfig

        d = make_structured_sparse(rng, 16, 32, 8, 0.5)
        a = SparseMatrix.from_dense(d, 8)
        rhs = rng.integers(-128, 128, size=(32, 16))
        with pytest.raises(ConfigError):
            spmm(a, rhs, config=SpMMConfig(), bsn=32)
        with pytest.raises(ConfigError):
            spmm(a, rhs, precision="L8-R8", config=SpMMConfig())
        with pytest.raises(ConfigError):
            spmm(a, rhs, l_signed=False, config=SpMMConfig())

    def test_sddmm_config_and_named_params_conflict(self, rng):
        from repro.errors import ConfigError
        from repro.kernels.sddmm import SDDMMConfig

        mask_d = (make_structured_sparse(rng, 16, 32, 8, 0.5) != 0).astype(np.int32)
        mask = SparseMatrix.from_dense(mask_d, 8)
        a = rng.integers(-128, 128, size=(16, 64))
        b = rng.integers(-128, 128, size=(64, 32))
        with pytest.raises(ConfigError):
            sddmm(a, b, mask, output_format="srbcrs", config=SDDMMConfig())
        with pytest.raises(ConfigError):
            sddmm(a, b, mask, precision="L8-R8", config=SDDMMConfig())

    def test_sddmm_config_injection(self, rng):
        from repro.kernels.sddmm import SDDMMConfig

        mask_d = (make_structured_sparse(rng, 16, 32, 8, 0.5) != 0).astype(np.int32)
        mask = SparseMatrix.from_dense(mask_d, 8)
        a = rng.integers(-128, 128, size=(16, 64))
        b = rng.integers(-128, 128, size=(64, 32))
        by_name = sddmm(a, b, mask, precision="L8-R8")
        by_config = sddmm(a, b, mask, config=SDDMMConfig(l_bits=8, r_bits=8))
        np.testing.assert_array_equal(
            by_config.output.to_dense(), by_name.output.to_dense()
        )

    def test_srbcrs_for_memoizes(self, rng):
        d = make_structured_sparse(rng, 16, 64, 8, 0.5, bits=4)
        a = SparseMatrix.from_dense(d, 8, precision="L8-R8")  # stride 16
        first = a.srbcrs_for(32)
        assert a.srbcrs_for(32) is first  # converted once
        assert a.srbcrs_for(16) is a.srbcrs
