"""Tests for the fused sparse softmax (Fig. 16 middle stage)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.formats import dense_to_bcrs
from repro.kernels.softmax import sparse_softmax_quantized
from tests.conftest import make_structured_sparse


def make_scores(rng, m=16, n=32, v=8, sparsity=0.5):
    d = make_structured_sparse(rng, m, n, v, sparsity, bits=8)
    return dense_to_bcrs(d, v)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        scores = make_scores(rng)
        res = sparse_softmax_quantized(scores, scale=0.05, out_bits=8)
        dense = res.output.to_dense().astype(np.float64) * res.params.scale
        mask = dense_to_bcrs((make_scores(rng).to_dense() != 0).astype(int), 8)
        for row in range(16):
            s = dense[row].sum()
            if s > 0:
                assert s == pytest.approx(1.0, abs=0.05)

    def test_monotonic(self, rng):
        """Higher score -> no smaller probability within a row."""
        scores = make_scores(rng)
        res = sparse_softmax_quantized(scores, scale=0.05, out_bits=16)
        for r in range(scores.num_strips):
            lo, hi = int(scores.row_ptrs[r]), int(scores.row_ptrs[r + 1])
            if hi - lo < 2:
                continue
            sc = scores.values[lo:hi, 0]
            pb = res.output.values[lo:hi, 0]
            order = np.argsort(sc)
            assert np.all(np.diff(pb[order]) >= 0)

    def test_output_unsigned_range(self, rng):
        scores = make_scores(rng)
        res = sparse_softmax_quantized(scores, scale=0.1, out_bits=8)
        assert res.output.values.min() >= 0
        assert res.output.values.max() <= 255
        assert not res.params.signed

    def test_16bit_more_accurate(self, rng):
        scores = make_scores(rng, m=8, n=64, v=8, sparsity=0.3)
        exact = {}
        for r in range(scores.num_strips):
            lo, hi = int(scores.row_ptrs[r]), int(scores.row_ptrs[r + 1])
            x = scores.values[lo:hi].astype(np.float64) * 0.05
            e = np.exp(x - x.max(axis=0))
            exact[r] = e / e.sum(axis=0)
        errs = {}
        for bits in (8, 16):
            res = sparse_softmax_quantized(scores, scale=0.05, out_bits=bits)
            err = 0.0
            for r, ex in exact.items():
                lo, hi = int(scores.row_ptrs[r]), int(scores.row_ptrs[r + 1])
                got = res.output.values[lo:hi] * res.params.scale
                err += float(np.abs(got - ex).mean())
            errs[bits] = err
        assert errs[16] < errs[8]

    def test_bad_bits(self, rng):
        with pytest.raises(ShapeError):
            sparse_softmax_quantized(make_scores(rng), scale=0.1, out_bits=4)

    def test_topology_preserved(self, rng):
        scores = make_scores(rng)
        res = sparse_softmax_quantized(scores, scale=0.1)
        np.testing.assert_array_equal(res.output.col_indices, scores.col_indices)

    def test_stats_traffic(self, rng):
        scores = make_scores(rng)
        res = sparse_softmax_quantized(scores, scale=0.1, out_bits=8)
        assert res.stats.traffic.read_bytes > 0
        assert res.stats.traffic.write_bytes == scores.nnz
