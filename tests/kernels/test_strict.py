"""Device-level strict executors vs the fast vectorized kernels.

The strongest end-to-end check in the suite: the full simulated
machinery — SR-BCRS group iteration, RHS staging, online transposes
(including the Fig. 7 shuffled int4 bit trick), warp fragments,
``mma_sync``, interleaved column stores — must agree exactly with the
vectorized kernel and the dense reference.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.formats import dense_to_srbcrs
from repro.kernels import MagicubeSpMM, SpMMConfig
from repro.kernels.strict import spmm_int4_strict, spmm_int8_strict
from tests.conftest import make_structured_sparse


class TestInt8Strict:
    @pytest.mark.parametrize("v", [2, 4, 8])
    def test_matches_fast_kernel(self, rng, v):
        dense = make_structured_sparse(rng, 16, 64, v, 0.6, bits=8)
        lhs = dense_to_srbcrs(dense, v, 16)
        rhs = rng.integers(-128, 128, size=(64, 64))
        strict = spmm_int8_strict(lhs, rhs)
        fast = MagicubeSpMM(SpMMConfig(l_bits=8, r_bits=8))(lhs, rhs).output
        np.testing.assert_array_equal(strict, fast)

    def test_matches_dense_reference(self, rng):
        dense = make_structured_sparse(rng, 16, 96, 8, 0.7, bits=8)
        lhs = dense_to_srbcrs(dense, 8, 16)
        rhs = rng.integers(-128, 128, size=(96, 64))
        np.testing.assert_array_equal(
            spmm_int8_strict(lhs, rhs), dense.astype(np.int64) @ rhs
        )

    def test_ragged_n(self, rng):
        """N not a multiple of BSn exercises the padding store path."""
        dense = make_structured_sparse(rng, 8, 64, 8, 0.5, bits=8)
        lhs = dense_to_srbcrs(dense, 8, 16)
        rhs = rng.integers(-128, 128, size=(64, 40))
        np.testing.assert_array_equal(
            spmm_int8_strict(lhs, rhs), dense.astype(np.int64) @ rhs
        )

    def test_wrong_stride_rejected(self, rng):
        dense = make_structured_sparse(rng, 8, 64, 8, 0.5, bits=4)
        lhs = dense_to_srbcrs(dense, 8, 32)
        with pytest.raises(ShapeError):
            spmm_int8_strict(lhs, np.zeros((64, 32), dtype=np.int64))


class TestInt4Strict:
    @pytest.mark.parametrize("v", [2, 4, 8])
    def test_matches_fast_kernel(self, rng, v):
        dense = make_structured_sparse(rng, 16, 64, v, 0.5, bits=4)
        lhs = dense_to_srbcrs(dense, v, 32)
        rhs = rng.integers(-8, 8, size=(64, 64))
        strict = spmm_int4_strict(lhs, rhs)
        fast = MagicubeSpMM(SpMMConfig(l_bits=4, r_bits=4))(lhs, rhs).output
        np.testing.assert_array_equal(strict, fast)

    def test_matches_dense_reference(self, rng):
        dense = make_structured_sparse(rng, 8, 128, 8, 0.6, bits=4)
        lhs = dense_to_srbcrs(dense, 8, 32)
        rhs = rng.integers(-8, 8, size=(128, 32))
        np.testing.assert_array_equal(
            spmm_int4_strict(lhs, rhs), dense.astype(np.int64) @ rhs
        )

    def test_shuffle_path_is_load_bearing(self, rng):
        """Skipping the shuffled staging breaks the result — proving the
        strict path truly depends on the Fig. 7 mechanism."""
        from repro.formats.srbcrs import PAD_INDEX
        from repro.gpu.fragments import INT4_M8N8K32
        from repro.gpu.mma import mma_sync
        from repro.kernels.strict import _gather_rows
        from repro.kernels.transpose import online_transpose_int4

        dense = make_structured_sparse(rng, 8, 64, 8, 0.3, bits=4)
        lhs = dense_to_srbcrs(dense, 8, 32)
        rhs = rng.integers(-8, 8, size=(64, 64)).astype(np.int64)
        lay = INT4_M8N8K32
        acc = np.zeros((32, 2), dtype=np.int32)
        cols, tile = lhs.group(0, 0)
        a = np.zeros((8, 32), dtype=np.int64)
        a[:8] = tile
        staged_unshuffled = _gather_rows(rhs, cols)[:, :64]  # WRONG order
        b_block = online_transpose_int4(staged_unshuffled)
        frag = lay.distribute_b(b_block[:, :8])
        got = lay.collect_c(mma_sync(lay.distribute_a(a), frag, acc, lay))
        ref = spmm_int4_strict(lhs, rhs)[0:8, 0:8]
        # a permuted reduction with MISMATCHED lhs/rhs order is wrong
        valid = cols != PAD_INDEX
        if valid.sum() > 1:  # with 0/1 valid vectors order cannot matter
            assert not np.array_equal(got, ref)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_strict_fast_agreement_property(seed):
    rng = np.random.default_rng(seed)
    dense = make_structured_sparse(rng, 16, 64, 8, 0.5, bits=4)
    lhs = dense_to_srbcrs(dense, 8, 32)
    rhs = rng.integers(-8, 8, size=(64, 32))
    np.testing.assert_array_equal(
        spmm_int4_strict(lhs, rhs), dense.astype(np.int64) @ rhs
    )
