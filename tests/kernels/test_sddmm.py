"""Tests for Magicube SDDMM."""

import numpy as np
import pytest

from repro.errors import ConfigError, PrecisionError, ShapeError
from repro.formats import SRBCRSMatrix, dense_to_bcrs
from repro.kernels import MagicubeSDDMM, SDDMMConfig
from tests.conftest import make_structured_sparse


def make_mask(rng, m, n, v, sparsity):
    pattern = make_structured_sparse(rng, m, n, v, sparsity, bits=2)
    pattern[pattern != 0] = 1
    return dense_to_bcrs(pattern, v)


def run_sddmm(rng, l_bits, r_bits, v=8, sparsity=0.7, m=32, k=64, n=64, **cfg):
    kern = MagicubeSDDMM(SDDMMConfig(l_bits=l_bits, r_bits=r_bits, **cfg))
    lo, hi = -(1 << (l_bits - 1)), (1 << (l_bits - 1)) - 1
    a = rng.integers(lo, hi + 1, size=(m, k))
    lo, hi = -(1 << (r_bits - 1)), (1 << (r_bits - 1)) - 1
    b = rng.integers(lo, hi + 1, size=(k, n))
    mask = make_mask(rng, m, n, v, sparsity)
    return a, b, mask, kern(a, b, mask)


def reference(a, b, mask):
    """Dense product sampled at the mask's nonzero vectors."""
    full = a.astype(np.int64) @ b.astype(np.int64)
    dense_mask = (mask.to_dense() != 0).astype(np.int64)
    # expand mask to whole vectors: a kept vector samples all V rows
    v = mask.vector_length
    strips = mask.shape[0] // v
    keep = dense_mask.reshape(strips, v, -1).any(axis=1)
    keep_full = np.repeat(keep, v, axis=0)
    return full * keep_full


class TestCorrectness:
    @pytest.mark.parametrize("l,r", [(8, 8), (4, 4), (16, 16)])
    def test_matches_reference(self, rng, l, r):
        a, b, mask, res = run_sddmm(rng, l, r)
        np.testing.assert_array_equal(res.output.to_dense(), reference(a, b, mask))

    @pytest.mark.parametrize("v", [2, 4, 8])
    def test_vector_lengths(self, rng, v):
        a, b, mask, res = run_sddmm(rng, 8, 8, v=v)
        np.testing.assert_array_equal(res.output.to_dense(), reference(a, b, mask))

    def test_strict_matches_fast(self, rng):
        kern = MagicubeSDDMM(SDDMMConfig(l_bits=16, r_bits=16))
        a = rng.integers(-(1 << 15), 1 << 15, size=(16, 32))
        b = rng.integers(-(1 << 15), 1 << 15, size=(32, 32))
        mask = make_mask(rng, 16, 32, 8, 0.5)
        fast = kern(a, b, mask).output.to_dense()
        strict = kern(a, b, mask, strict=True).output.to_dense()
        np.testing.assert_array_equal(fast, strict)

    def test_topology_preserved(self, rng):
        a, b, mask, res = run_sddmm(rng, 8, 8)
        np.testing.assert_array_equal(res.output.col_indices, mask.col_indices)
        np.testing.assert_array_equal(res.output.row_ptrs, mask.row_ptrs)

    def test_srbcrs_output_format(self, rng):
        a, b, mask, res = run_sddmm(rng, 8, 8, output_format="srbcrs")
        assert isinstance(res.output, SRBCRSMatrix)
        np.testing.assert_array_equal(res.output.to_dense(), reference(a, b, mask))

    def test_empty_mask(self, rng):
        kern = MagicubeSDDMM(SDDMMConfig())
        a = rng.integers(-10, 10, size=(16, 32))
        b = rng.integers(-10, 10, size=(32, 16))
        mask = dense_to_bcrs(np.zeros((16, 16), dtype=np.int32), 8)
        res = kern(a, b, mask)
        assert res.output.nnz == 0


class TestValidation:
    def test_k_must_align_to_bsk(self, rng):
        kern = MagicubeSDDMM(SDDMMConfig(l_bits=4, r_bits=4))  # BSk=32
        a = rng.integers(-8, 8, size=(16, 48))
        b = rng.integers(-8, 8, size=(48, 16))
        mask = make_mask(rng, 16, 16, 8, 0.5)
        with pytest.raises(ShapeError, match="BSk"):
            kern(a, b, mask)

    def test_range_checked(self, rng):
        kern = MagicubeSDDMM(SDDMMConfig(l_bits=4, r_bits=4))
        a = rng.integers(-100, 100, size=(16, 32))
        b = rng.integers(-8, 8, size=(32, 16))
        with pytest.raises(PrecisionError):
            kern(a, b, make_mask(rng, 16, 16, 8, 0.5))

    def test_mask_shape_checked(self, rng):
        kern = MagicubeSDDMM(SDDMMConfig())
        a = rng.integers(-8, 8, size=(16, 32))
        b = rng.integers(-8, 8, size=(32, 16))
        with pytest.raises(ShapeError):
            kern(a, b, make_mask(rng, 16, 32, 8, 0.5))

    def test_bad_config(self):
        with pytest.raises(ConfigError):
            SDDMMConfig(warps=0)
        with pytest.raises(ConfigError):
            SDDMMConfig(output_format="coo")


class TestAccounting:
    def test_useful_ops(self, rng):
        a, b, mask, res = run_sddmm(rng, 8, 8, k=64)
        assert res.stats.useful_ops == 2 * 64 * mask.nnz

    def test_emulation_quadruples_mmas(self, rng):
        a = rng.integers(-128, 128, size=(32, 64))
        b = rng.integers(-128, 128, size=(64, 64))
        mask = make_mask(rng, 32, 64, 8, 0.7)
        res88 = MagicubeSDDMM(SDDMMConfig(l_bits=8, r_bits=8))(a, b, mask)
        res1616 = MagicubeSDDMM(SDDMMConfig(l_bits=16, r_bits=16))(a, b, mask)
        assert res1616.stats.mma_ops["int8"] == 4 * res88.stats.mma_ops["int8"]

    def test_prefetch_removes_serial_bytes(self, rng):
        _, _, _, basic = run_sddmm(rng, 8, 8, prefetch_lhs=False)
        _, _, _, pf = run_sddmm(rng, 8, 8, prefetch_lhs=True)
        assert basic.stats.serial_bytes > 0
        assert pf.stats.serial_bytes == 0

    def test_lhs_serial_bytes_small_vs_rhs(self, rng):
        """Why Fig. 13 shows no prefetch benefit: the A tile is a tiny
        share of the traffic (it is reused by all warps)."""
        _, _, _, res = run_sddmm(rng, 8, 8, m=64, k=128, n=128, prefetch_lhs=False)
        rhs_bytes = res.stats.traffic.by_stream["rhs"][0]
        assert res.stats.serial_bytes < 0.3 * rhs_bytes
