"""Tests for the online-transpose strategies (Figs. 4-7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.kernels.transpose import (
    INT8_OPS_PER_16,
    NAIVE_INT4_OPS_PER_16,
    SHUFFLED_INT4_OPS_PER_16,
    int8_mma_columns,
    online_transpose_int4,
    online_transpose_int8,
    stage_rows_shuffled,
    transpose_bitop_cost,
    verify_int8_fragments,
)


class TestInt8OnlineTranspose:
    def test_fragments_valid_bsn64(self):
        rng = np.random.default_rng(0)
        block = rng.integers(-128, 128, size=(16, 64))
        frags = online_transpose_int8(block)
        assert frags.shape == (8, 32)
        assert verify_int8_fragments(block, frags)

    def test_fragments_valid_bsn128(self):
        rng = np.random.default_rng(1)
        block = rng.integers(-128, 128, size=(16, 128))
        frags = online_transpose_int8(block)
        assert frags.shape == (16, 32)
        assert verify_int8_fragments(block, frags)

    def test_mma_columns_interleaved(self):
        # MMA 0 of warp 0 covers columns 0, 4, 8, ..., 28
        np.testing.assert_array_equal(int8_mma_columns(0), np.arange(8) * 4)
        # MMA 1 covers the columns congruent to 1 mod 4
        np.testing.assert_array_equal(int8_mma_columns(1), np.arange(8) * 4 + 1)
        # warp 1's first MMA starts at column 32
        np.testing.assert_array_equal(int8_mma_columns(4), 32 + np.arange(8) * 4)

    def test_columns_cover_block_exactly(self):
        cols = np.concatenate([int8_mma_columns(j) for j in range(8)])
        np.testing.assert_array_equal(np.sort(cols), np.arange(64))

    def test_bad_shape(self):
        with pytest.raises(ShapeError):
            online_transpose_int8(np.zeros((8, 64), dtype=np.int64))
        with pytest.raises(ShapeError):
            online_transpose_int8(np.zeros((16, 48), dtype=np.int64))

    def test_detects_corruption(self):
        rng = np.random.default_rng(2)
        block = rng.integers(-128, 128, size=(16, 64))
        frags = online_transpose_int8(block)
        frags[0, 0] ^= np.uint32(1)
        assert not verify_int8_fragments(block, frags)


class TestInt4IndexShuffleTranspose:
    """The Fig. 7 trick: stage shuffled, bit-twiddle, recover original order."""

    def test_round_trip(self):
        rng = np.random.default_rng(3)
        block = rng.integers(-8, 8, size=(32, 64))
        staged = stage_rows_shuffled(block)
        recovered = online_transpose_int4(staged)
        np.testing.assert_array_equal(recovered, block)

    def test_shuffle_is_essential(self):
        """Without the index shuffle the bit trick outputs permuted rows."""
        rng = np.random.default_rng(4)
        block = rng.integers(-8, 8, size=(32, 64))
        out = online_transpose_int4(block)  # staged unshuffled
        assert not np.array_equal(out, block)
        # the trick applies the *inverse* shuffle, so unshuffled staging
        # comes out permuted by it:
        from repro.formats.shuffle import inverse_order

        inv = inverse_order()
        expect = block.reshape(4, 8, 64)[:, inv].reshape(32, 64)
        np.testing.assert_array_equal(out, expect)

    def test_stage_rows_shuffled_blocks(self):
        rows = np.arange(16)[:, None] * np.ones((1, 4), dtype=np.int64)
        staged = stage_rows_shuffled(rows)
        np.testing.assert_array_equal(staged[:8, 0], [0, 2, 4, 6, 1, 3, 5, 7])
        np.testing.assert_array_equal(staged[8:, 0], [8, 10, 12, 14, 9, 11, 13, 15])

    def test_extreme_values(self):
        block = np.full((8, 8), -8, dtype=np.int64)
        block[0] = 7
        np.testing.assert_array_equal(
            online_transpose_int4(stage_rows_shuffled(block)), block
        )

    def test_bad_shape(self):
        with pytest.raises(ShapeError):
            online_transpose_int4(np.zeros((30, 64), dtype=np.int64))
        with pytest.raises(ShapeError):
            stage_rows_shuffled(np.zeros((12, 4), dtype=np.int64))


class TestBitopCost:
    def test_paper_ratio(self):
        """Index shuffling cuts the int4 bit work 8x (8 vs 64 ops / 16)."""
        assert NAIVE_INT4_OPS_PER_16 // SHUFFLED_INT4_OPS_PER_16 == 8

    def test_shuffled_cost(self):
        # 8 bitwise operations transpose 16 int4 values (Sec. IV-B3)
        assert transpose_bitop_cost(4, 16, shuffled=True) == SHUFFLED_INT4_OPS_PER_16

    def test_scaling(self):
        assert transpose_bitop_cost(4, 2048, True) == 2048 // 16 * 8
        assert transpose_bitop_cost(8, 1024, False) == 1024 // 16 * INT8_OPS_PER_16

    def test_unsupported(self):
        with pytest.raises(ShapeError):
            transpose_bitop_cost(16, 16, True)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1), st.sampled_from([8, 16, 32, 64]))
def test_int4_round_trip_property(seed, n):
    rng = np.random.default_rng(seed)
    block = rng.integers(-8, 8, size=(32, n))
    np.testing.assert_array_equal(
        online_transpose_int4(stage_rows_shuffled(block)), block
    )


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_int8_fragments_property(seed):
    rng = np.random.default_rng(seed)
    block = rng.integers(-128, 128, size=(16, 32))
    assert verify_int8_fragments(block, online_transpose_int8(block))
