"""Tests for mixed-precision emulation plans and stacking (Sec. IV-D)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PrecisionError
from repro.kernels.emulation import (
    emulated_matmul,
    mma_count_per_tile,
    plan_for,
    stack_factor,
    stacked_lhs,
    supported_pairs,
)


class TestTable4:
    """Pin Table IV."""

    def test_spmm_pairs(self):
        assert supported_pairs("spmm") == [
            (16, 16),
            (16, 8),
            (16, 4),
            (12, 4),
            (8, 8),
            (8, 4),
            (4, 4),
        ]

    def test_sddmm_pairs(self):
        assert supported_pairs("sddmm") == [(16, 16), (8, 8), (4, 4)]

    def test_native_pairs(self):
        assert plan_for(8, 8).is_native
        assert plan_for(4, 4).is_native
        assert not plan_for(16, 8).is_native

    def test_sddmm_rejects_mixed(self):
        with pytest.raises(PrecisionError):
            plan_for(16, 8, op="sddmm")

    def test_spmm_rejects_unknown(self):
        with pytest.raises(PrecisionError):
            plan_for(8, 16)  # RHS wider than LHS is not in Table IV
        with pytest.raises(PrecisionError):
            plan_for(12, 8)

    def test_bad_op(self):
        with pytest.raises(PrecisionError):
            plan_for(8, 8, op="gemm")


class TestPlanStructure:
    @pytest.mark.parametrize(
        "l,r,native,products",
        [
            (16, 16, 8, 4),
            (16, 8, 8, 2),
            (8, 8, 8, 1),
            (16, 4, 4, 4),
            (12, 4, 4, 3),
            (8, 4, 4, 2),
            (4, 4, 4, 1),
        ],
    )
    def test_digit_counts(self, l, r, native, products):
        p = plan_for(l, r)
        assert p.native_bits == native
        assert p.products == products

    def test_weights_l16_r8(self):
        p = plan_for(16, 8)
        assert p.weights() == [(1, 0, 0), (256, 1, 0)]

    def test_weights_l8_r4(self):
        p = plan_for(8, 4)
        assert p.weights() == [(1, 0, 0), (16, 1, 0)]

    def test_weights_l16_r16(self):
        p = plan_for(16, 16)
        scales = sorted(w[0] for w in p.weights())
        assert scales == [1, 256, 256, 65536]


class TestEmulatedMatmul:
    @pytest.mark.parametrize("l,r", [(16, 16), (16, 8), (16, 4), (12, 4), (8, 4)])
    def test_exact_signed(self, l, r):
        rng = np.random.default_rng(l * 100 + r)
        lo_a, hi_a = -(1 << (l - 1)), (1 << (l - 1)) - 1
        lo_b, hi_b = -(1 << (r - 1)), (1 << (r - 1)) - 1
        a = rng.integers(lo_a, hi_a + 1, size=(8, 32))
        b = rng.integers(lo_b, hi_b + 1, size=(32, 8))
        np.testing.assert_array_equal(emulated_matmul(a, b, plan_for(l, r)), a @ b)

    def test_exact_unsigned_lhs(self):
        """Softmax output path: unsigned LHS x signed RHS."""
        rng = np.random.default_rng(9)
        a = rng.integers(0, 1 << 16, size=(4, 16))
        b = rng.integers(-128, 128, size=(16, 4))
        out = emulated_matmul(a, b, plan_for(16, 8), a_signed=False)
        np.testing.assert_array_equal(out, a @ b)

    def test_extreme_values(self):
        a = np.array([[-32768, 32767]])
        b = np.array([[-8], [7]])
        np.testing.assert_array_equal(
            emulated_matmul(a, b, plan_for(16, 4)), a @ b
        )


class TestStacking:
    def test_stack_factor(self):
        assert stack_factor(8, 4) == 1   # full vectors: no room to stack
        assert stack_factor(4, 2) == 2   # Fig. 10b: V=4 stacks 2
        assert stack_factor(2, 4) == 4
        assert stack_factor(2, 2) == 2
        assert stack_factor(4, 1) == 1   # native: nothing to stack

    def test_stack_factor_bounds(self):
        with pytest.raises(PrecisionError):
            stack_factor(0, 2)
        with pytest.raises(PrecisionError):
            stack_factor(9, 2)

    def test_mma_count_per_tile(self):
        # L16-R8 (2 products): V=8 -> 2 MMAs; V=4 -> 1 stacked MMA
        assert mma_count_per_tile(plan_for(16, 8), 8) == 2
        assert mma_count_per_tile(plan_for(16, 8), 4) == 1
        # L16-R4 (4 products): V=2 stacks all 4 into 1
        assert mma_count_per_tile(plan_for(16, 4), 2) == 1
        assert mma_count_per_tile(plan_for(16, 4), 8) == 4
        # L12-R4 (3 products): V=4 stacks 2 -> ceil(3/2) = 2
        assert mma_count_per_tile(plan_for(12, 4), 4) == 2

    def test_stacked_lhs_layout(self):
        d0 = np.ones((4, 16), dtype=np.int64)
        d1 = 2 * np.ones((4, 16), dtype=np.int64)
        stacked = stacked_lhs([d0, d1], vector_length=4)
        assert len(stacked) == 1
        assert stacked[0].shape == (8, 16)
        np.testing.assert_array_equal(stacked[0][:4], d0)
        np.testing.assert_array_equal(stacked[0][4:], d1)

    def test_stacked_lhs_partial(self):
        tiles = [np.full((4, 8), i, dtype=np.int64) for i in range(3)]
        stacked = stacked_lhs(tiles, vector_length=4)
        assert len(stacked) == 2
        np.testing.assert_array_equal(stacked[1][:4], tiles[2])
        np.testing.assert_array_equal(stacked[1][4:], 0)  # zero padding

    def test_stacked_mma_equivalence(self):
        """One stacked MMA == two separate digit MMAs (Fig. 10b)."""
        rng = np.random.default_rng(10)
        a = rng.integers(-128, 128, size=(4, 16))
        b = rng.integers(-8, 8, size=(16, 8))
        plan = plan_for(8, 4)
        from repro.lowp.decompose import decompose_matrix, digit_weights

        digits = decompose_matrix(a, 8, 4, signed=True)
        stacked = stacked_lhs(digits, vector_length=4)[0]  # (8, 16)
        prod = stacked @ b  # one MMA
        w = digit_weights(8, 4)
        recombined = w[0] * prod[:4] + w[1] * prod[4:]
        np.testing.assert_array_equal(recombined, a @ b)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.sampled_from([(16, 16), (16, 8), (16, 4), (12, 4), (8, 4), (8, 8), (4, 4)]),
)
def test_emulation_property(seed, pair):
    l, r = pair
    rng = np.random.default_rng(seed)
    a = rng.integers(-(1 << (l - 1)), 1 << (l - 1), size=(4, 8))
    b = rng.integers(-(1 << (r - 1)), 1 << (r - 1), size=(8, 4))
    np.testing.assert_array_equal(emulated_matmul(a, b, plan_for(l, r)), a @ b)
