"""Tests for Magicube SpMM."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, PrecisionError, ShapeError
from repro.formats import dense_to_srbcrs
from repro.kernels import MagicubeSpMM, SpMMConfig
from tests.conftest import make_structured_sparse


def run_spmm(rng, l_bits, r_bits, v=8, sparsity=0.7, m=32, k=64, n=64, **cfg_kwargs):
    kern = MagicubeSpMM(SpMMConfig(l_bits=l_bits, r_bits=r_bits, **cfg_kwargs))
    dense = make_structured_sparse(rng, m, k, v, sparsity, bits=l_bits)
    lhs = dense_to_srbcrs(dense, v, kern.required_stride)
    lo, hi = -(1 << (r_bits - 1)), (1 << (r_bits - 1)) - 1
    rhs = rng.integers(lo, hi + 1, size=(k, n))
    res = kern(lhs, rhs)
    return dense, rhs, res


class TestCorrectness:
    @pytest.mark.parametrize("l,r", [(8, 8), (4, 4), (16, 8), (16, 16), (8, 4), (16, 4), (12, 4)])
    def test_matches_dense_reference(self, rng, l, r):
        dense, rhs, res = run_spmm(rng, l, r)
        np.testing.assert_array_equal(res.output, dense.astype(np.int64) @ rhs)

    @pytest.mark.parametrize("v", [2, 4, 8])
    def test_vector_lengths(self, rng, v):
        dense, rhs, res = run_spmm(rng, 8, 8, v=v)
        np.testing.assert_array_equal(res.output, dense.astype(np.int64) @ rhs)

    @pytest.mark.parametrize("sparsity", [0.5, 0.9, 0.98])
    def test_sparsities(self, rng, sparsity):
        dense, rhs, res = run_spmm(rng, 8, 8, sparsity=sparsity, m=64, k=128)
        np.testing.assert_array_equal(res.output, dense.astype(np.int64) @ rhs)

    def test_strict_mode_matches_fast(self, rng):
        kern = MagicubeSpMM(SpMMConfig(l_bits=16, r_bits=4))
        dense = make_structured_sparse(rng, 16, 64, 8, 0.6, bits=16)
        lhs = dense_to_srbcrs(dense, 8, kern.required_stride)
        rhs = rng.integers(-8, 8, size=(64, 32))
        fast = kern(lhs, rhs).output
        strict = kern(lhs, rhs, strict=True).output
        np.testing.assert_array_equal(fast, strict)

    def test_empty_matrix(self, rng):
        kern = MagicubeSpMM(SpMMConfig())
        lhs = dense_to_srbcrs(np.zeros((16, 32), dtype=np.int32), 8, 16)
        rhs = rng.integers(-128, 128, size=(32, 16))
        res = kern(lhs, rhs)
        np.testing.assert_array_equal(res.output, 0)

    def test_unsigned_lhs(self, rng):
        """Softmax-output path: unsigned 8-bit LHS, signed int8 RHS."""
        kern = MagicubeSpMM(SpMMConfig(l_bits=8, r_bits=8, l_signed=False))
        dense = make_structured_sparse(rng, 16, 32, 8, 0.5, bits=8, signed=False)
        lhs = dense_to_srbcrs(dense, 8, 16)
        rhs = rng.integers(-128, 128, size=(32, 16))
        res = kern(lhs, rhs)
        np.testing.assert_array_equal(res.output, dense.astype(np.int64) @ rhs)

    def test_fused_dequantization(self, rng):
        kern = MagicubeSpMM(SpMMConfig())
        dense = make_structured_sparse(rng, 16, 32, 8, 0.5)
        lhs = dense_to_srbcrs(dense, 8, 16)
        rhs = rng.integers(-128, 128, size=(32, 16))
        res = kern(lhs, rhs, scale=0.25)
        np.testing.assert_allclose(res.dequantized, res.output * 0.25, rtol=1e-6)


class TestValidation:
    def test_wrong_stride(self, rng):
        kern = MagicubeSpMM(SpMMConfig(l_bits=4, r_bits=4))  # needs stride 32
        dense = make_structured_sparse(rng, 16, 32, 8, 0.5, bits=4)
        lhs = dense_to_srbcrs(dense, 8, 16)
        with pytest.raises(ShapeError, match="stride 32"):
            kern(lhs, rng.integers(-8, 8, size=(32, 16)))

    def test_rhs_shape_mismatch(self, rng):
        kern = MagicubeSpMM(SpMMConfig())
        dense = make_structured_sparse(rng, 16, 32, 8, 0.5)
        lhs = dense_to_srbcrs(dense, 8, 16)
        with pytest.raises(ShapeError):
            kern(lhs, rng.integers(-128, 128, size=(16, 16)))

    def test_rhs_range_checked(self, rng):
        kern = MagicubeSpMM(SpMMConfig(l_bits=8, r_bits=4))
        dense = make_structured_sparse(rng, 16, 32, 8, 0.5)
        lhs = dense_to_srbcrs(dense, 8, 32)
        with pytest.raises(PrecisionError):
            kern(lhs, rng.integers(-128, 128, size=(32, 16)))

    def test_lhs_range_checked(self, rng):
        kern = MagicubeSpMM(SpMMConfig(l_bits=4, r_bits=4))
        dense = make_structured_sparse(rng, 16, 32, 8, 0.5, bits=8)
        dense[dense > 7] = 100  # force out of int4 range
        dense[0, 0] = 100
        lhs = dense_to_srbcrs(dense, 8, 32)
        with pytest.raises(PrecisionError):
            kern(lhs, rng.integers(-8, 8, size=(32, 16)))

    def test_unsupported_pair(self):
        with pytest.raises(PrecisionError):
            MagicubeSpMM(SpMMConfig(l_bits=8, r_bits=16))

    def test_bad_bsn(self):
        with pytest.raises(ConfigError):
            SpMMConfig(bsn=48)


class TestAccounting:
    def test_useful_ops(self, rng):
        dense, rhs, res = run_spmm(rng, 8, 8, n=64)
        nnz = int((dense.reshape(-1, 8, 64).any(axis=1)).sum()) * 8
        assert res.stats.useful_ops == 2 * nnz * 64

    def test_emulation_multiplies_mmas(self, rng):
        dense = make_structured_sparse(rng, 32, 64, 8, 0.7, bits=8)
        lhs = dense_to_srbcrs(dense, 8, 16)
        rhs = rng.integers(-128, 128, size=(64, 64))
        res88 = MagicubeSpMM(SpMMConfig(l_bits=8, r_bits=8))(lhs, rhs)
        res168 = MagicubeSpMM(SpMMConfig(l_bits=16, r_bits=8))(lhs, rhs)
        assert res168.stats.mma_ops["int8"] == 2 * res88.stats.mma_ops["int8"]

    def test_stacking_halves_mmas(self, rng):
        """V=4 + 2 digit products -> stacked into the same MMA count as native."""
        dense = make_structured_sparse(rng, 32, 64, 4, 0.7, bits=8)
        lhs = dense_to_srbcrs(dense, 4, 16)
        rhs = rng.integers(-128, 128, size=(64, 64))
        res88 = MagicubeSpMM(SpMMConfig(l_bits=8, r_bits=8))(lhs, rhs)
        res168 = MagicubeSpMM(SpMMConfig(l_bits=16, r_bits=8))(lhs, rhs)
        assert res168.stats.mma_ops["int8"] == res88.stats.mma_ops["int8"]

    def test_conflict_degree_recorded(self, rng):
        _, _, good = run_spmm(rng, 8, 8, conflict_free=True)
        _, _, bad = run_spmm(rng, 8, 8, conflict_free=False)
        assert good.stats.notes["conflict_degree"] == 1
        assert bad.stats.notes["conflict_degree"] > 1
        assert bad.stats.smem_transaction_cycles > good.stats.smem_transaction_cycles

    def test_shuffle_reduces_epilogue(self, rng):
        _, _, fast = run_spmm(rng, 4, 4, index_shuffle=True)
        _, _, slow = run_spmm(rng, 4, 4, index_shuffle=False)
        assert slow.stats.epilogue_cycles > fast.stats.epilogue_cycles

    def test_prefetch_flag(self, rng):
        _, _, res = run_spmm(rng, 8, 8, prefetch=False)
        assert not res.stats.prefetch

    def test_lower_precision_less_rhs_traffic(self, rng):
        _, _, res8 = run_spmm(rng, 8, 8)
        _, _, res4 = run_spmm(rng, 8, 4)
        assert (
            res4.stats.traffic.by_stream["rhs"][0]
            < res8.stats.traffic.by_stream["rhs"][0]
        )

    def test_variant_names(self):
        assert MagicubeSpMM(SpMMConfig(conflict_free=False)).variant_name() == "basic"
        assert (
            MagicubeSpMM(SpMMConfig(l_bits=4, r_bits=4)).variant_name()
            == "conflict-free + prefetch + col-index-shuffling"
        )

    def test_rhs_unique_traffic_capped_at_matrix_size(self, rng):
        _, rhs, res = run_spmm(rng, 8, 8, sparsity=0.3, m=64, k=64, n=64)
        assert res.stats.traffic.by_stream["rhs"][1] <= 64 * 64


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.sampled_from([(8, 8), (16, 8), (8, 4)]),
    st.sampled_from([2, 4, 8]),
)
def test_spmm_property(seed, pair, v):
    l, r = pair
    rng = np.random.default_rng(seed)
    kern = MagicubeSpMM(SpMMConfig(l_bits=l, r_bits=r))
    dense = make_structured_sparse(rng, 16, 64, v, 0.7, bits=l)
    lhs = dense_to_srbcrs(dense, v, kern.required_stride)
    rhs = rng.integers(-(1 << (r - 1)), 1 << (r - 1), size=(64, 24))
    res = kern(lhs, rhs)
    np.testing.assert_array_equal(res.output, dense.astype(np.int64) @ rhs)
