"""Tests for symmetric/unsigned quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.lowp import (
    QuantParams,
    dequantize,
    int_range,
    quantize_with,
    symmetric_quantize,
    unsigned_quantize,
)


class TestIntRange:
    def test_signed(self):
        assert int_range(8) == (-128, 127)
        assert int_range(4) == (-8, 7)

    def test_unsigned(self):
        assert int_range(8, signed=False) == (0, 255)
        assert int_range(4, signed=False) == (0, 15)

    def test_invalid_bits(self):
        with pytest.raises(QuantizationError):
            int_range(0)
        with pytest.raises(QuantizationError):
            int_range(33)


class TestSymmetric:
    def test_extremes_map_to_qmax(self):
        x = np.array([-1.0, 0.0, 1.0])
        q, p = symmetric_quantize(x, 8)
        assert q[2] == 127 and q[0] == -127
        assert q[1] == 0

    def test_range_respected(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=1000)
        q, p = symmetric_quantize(x, 4)
        assert q.min() >= -8 and q.max() <= 7

    def test_round_trip_error_bounded(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=500)
        q, p = symmetric_quantize(x, 8)
        err = np.abs(dequantize(q, p) - x)
        assert err.max() <= p.scale / 2 + 1e-9

    def test_lower_bits_higher_error(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=2000)
        errs = []
        for bits in (16, 8, 4):
            q, p = symmetric_quantize(x, bits)
            errs.append(float(np.abs(dequantize(q, p) - x).mean()))
        assert errs[0] < errs[1] < errs[2]

    def test_all_zero_input(self):
        q, p = symmetric_quantize(np.zeros(4), 8)
        assert p.scale == 1.0
        np.testing.assert_array_equal(q, 0)


class TestUnsigned:
    def test_softmax_like_input(self):
        x = np.array([0.0, 0.25, 0.5, 1.0])
        q, p = unsigned_quantize(x, 8)
        assert q[-1] == 255 and q[0] == 0

    def test_rejects_negative(self):
        with pytest.raises(QuantizationError):
            unsigned_quantize(np.array([-0.1, 0.5]), 8)


class TestParams:
    def test_bad_scale(self):
        with pytest.raises(QuantizationError):
            QuantParams(scale=0.0, bits=8)
        with pytest.raises(QuantizationError):
            QuantParams(scale=float("nan"), bits=8)

    def test_quantize_with_clips(self):
        p = QuantParams(scale=0.1, bits=4)
        q = quantize_with(np.array([100.0, -100.0]), p)
        assert q[0] == 7 and q[1] == -8


@settings(max_examples=50)
@given(
    st.lists(
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False), min_size=1, max_size=64
    ),
    st.sampled_from([4, 8, 16]),
)
def test_quantize_round_trip_property(vals, bits):
    x = np.array(vals)
    q, p = symmetric_quantize(x, bits)
    assert q.min() >= p.qmin and q.max() <= p.qmax
    # dequantized values within half a step of the original
    assert np.all(np.abs(dequantize(q, p) - x) <= p.scale * 0.5 + 1e-6)
