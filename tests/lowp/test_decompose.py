"""Tests for two's-complement digit decomposition (Sec. IV-D algebra)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PrecisionError
from repro.lowp import decompose_matrix, digit_weights, recombine, split_signed, split_unsigned


class TestPaperExamples:
    def test_unsigned_237(self):
        # Sec. IV-D1: a = 0b11101101 = 237 -> a0 = 13, a1 = 14
        digits = split_unsigned(np.array([237]), 8, 4)
        assert digits[0][0] == 13
        assert digits[1][0] == 14
        assert recombine(digits, 4)[0] == 237

    def test_signed_minus_19(self):
        # Sec. IV-D2: -19 = 0b11101101 -> low unsigned 13, high signed -2
        digits = split_signed(np.array([-19]), 8, 4)
        assert digits[0][0] == 13
        assert digits[1][0] == -2
        assert recombine(digits, 4)[0] == -19


class TestExhaustive:
    def test_all_int8_via_nibbles(self):
        vals = np.arange(-128, 128)
        digits = split_signed(vals, 8, 4)
        assert digits[0].min() >= 0 and digits[0].max() <= 15
        assert digits[1].min() >= -8 and digits[1].max() <= 7
        np.testing.assert_array_equal(recombine(digits, 4), vals)

    def test_all_int16_via_bytes(self):
        vals = np.arange(-32768, 32768)
        digits = split_signed(vals, 16, 8)
        assert digits[0].min() >= 0 and digits[0].max() <= 255
        assert digits[1].min() >= -128 and digits[1].max() <= 127
        np.testing.assert_array_equal(recombine(digits, 8), vals)

    def test_all_int16_via_nibbles(self):
        vals = np.arange(-32768, 32768, 7)
        digits = split_signed(vals, 16, 4)
        assert len(digits) == 4
        for d in digits[:-1]:
            assert d.min() >= 0 and d.max() <= 15
        np.testing.assert_array_equal(recombine(digits, 4), vals)

    def test_all_int12(self):
        vals = np.arange(-2048, 2048)
        digits = split_signed(vals, 12, 4)
        assert len(digits) == 3
        np.testing.assert_array_equal(recombine(digits, 4), vals)

    def test_all_uint8(self):
        vals = np.arange(0, 256)
        np.testing.assert_array_equal(recombine(split_unsigned(vals, 8, 4), 4), vals)


class TestValidation:
    def test_uneven_split_rejected(self):
        with pytest.raises(PrecisionError):
            digit_weights(10, 4)

    def test_out_of_range_signed(self):
        with pytest.raises(PrecisionError):
            split_signed(np.array([128]), 8, 4)

    def test_out_of_range_unsigned(self):
        with pytest.raises(PrecisionError):
            split_unsigned(np.array([-1]), 8, 4)

    def test_weights(self):
        assert digit_weights(16, 4) == [1, 16, 256, 4096]
        assert digit_weights(8, 8) == [1]


class TestMatrixDecompose:
    def test_matmul_emulation_identity(self):
        """C == sum_i w_i * (D_i @ B) — the heart of mixed precision."""
        rng = np.random.default_rng(7)
        a = rng.integers(-128, 128, size=(8, 16)).astype(np.int64)
        b = rng.integers(-8, 8, size=(16, 8)).astype(np.int64)
        digits = decompose_matrix(a, 8, 4, signed=True)
        weights = digit_weights(8, 4)
        emulated = sum(w * (d.astype(np.int64) @ b) for w, d in zip(weights, digits))
        np.testing.assert_array_equal(emulated, a @ b)

    def test_shape_preserved(self):
        a = np.zeros((4, 6), dtype=np.int64)
        for d in decompose_matrix(a, 16, 8):
            assert d.shape == (4, 6)


@settings(max_examples=80)
@given(
    st.lists(st.integers(min_value=-32768, max_value=32767), min_size=1, max_size=32),
    st.sampled_from([(16, 4), (16, 8)]),
)
def test_signed_round_trip_property(vals, spec):
    src, dig = spec
    arr = np.array(vals)
    np.testing.assert_array_equal(recombine(split_signed(arr, src, dig), dig), arr)
