"""Tests for uint32 word manipulation (Fig. 5 / Fig. 7 building blocks)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lowp.bitops import (
    assemble_bytes,
    extract_bytes,
    gather_nibbles,
    interleave_nibble_pairs,
    split_nibbles,
    transpose_bytes_4x4,
)

words_strategy = st.lists(
    st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=16
)


class TestBytes:
    def test_extract_little_endian(self):
        b = extract_bytes(np.array([0x44332211], dtype=np.uint32))
        np.testing.assert_array_equal(b[0], [0x11, 0x22, 0x33, 0x44])

    def test_assemble_inverse(self):
        w = np.array([0xDEADBEEF, 0x01020304], dtype=np.uint32)
        np.testing.assert_array_equal(assemble_bytes(extract_bytes(w)), w)

    def test_assemble_needs_last_dim_4(self):
        with pytest.raises(ValueError):
            assemble_bytes(np.zeros((2, 3), dtype=np.uint8))


class TestTranspose4x4:
    def test_matches_matrix_transpose(self):
        # rows of a 4x4 byte matrix packed as words
        mat = np.arange(16, dtype=np.uint8).reshape(4, 4)
        words = assemble_bytes(mat)  # word i = row i
        t = transpose_bytes_4x4(words)
        expect = assemble_bytes(mat.T)
        np.testing.assert_array_equal(t, expect)

    def test_involution(self):
        rng = np.random.default_rng(2)
        w = rng.integers(0, 2**32, size=(5, 4), dtype=np.uint64).astype(np.uint32)
        np.testing.assert_array_equal(transpose_bytes_4x4(transpose_bytes_4x4(w)), w)

    def test_needs_last_dim_4(self):
        with pytest.raises(ValueError):
            transpose_bytes_4x4(np.zeros(3, dtype=np.uint32))


class TestNibbles:
    def test_split_known(self):
        low, high = split_nibbles(np.array([0xABCDEF12], dtype=np.uint32))
        assert low[0] == 0x0B0D0F02
        assert high[0] == 0x0A0C0E01

    def test_interleave_inverts_split(self):
        rng = np.random.default_rng(3)
        w = rng.integers(0, 2**32, size=8, dtype=np.uint64).astype(np.uint32)
        low, high = split_nibbles(w)
        np.testing.assert_array_equal(interleave_nibble_pairs(low, high), w)

    def test_gather_identity(self):
        w = np.array([0x76543210], dtype=np.uint32)
        np.testing.assert_array_equal(gather_nibbles(w, np.arange(8)), w)

    def test_gather_reverse(self):
        w = np.array([0x76543210], dtype=np.uint32)
        out = gather_nibbles(w, np.arange(7, -1, -1))
        assert out[0] == 0x01234567

    def test_gather_bad_order(self):
        with pytest.raises(ValueError):
            gather_nibbles(np.zeros(1, dtype=np.uint32), np.arange(4))


@settings(max_examples=50)
@given(words_strategy)
def test_split_interleave_property(vals):
    w = np.array(vals, dtype=np.uint32)
    low, high = split_nibbles(w)
    # low/high only occupy the low nibble of each byte
    assert not np.any(low & np.uint32(0xF0F0F0F0))
    assert not np.any(high & np.uint32(0xF0F0F0F0))
    np.testing.assert_array_equal(interleave_nibble_pairs(low, high), w)
