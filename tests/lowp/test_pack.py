"""Tests for int4/int8/int16 packing into uint32 words."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.lowp import (
    pack_int4,
    pack_int8,
    pack_int16,
    pack_rows,
    pack_uint4,
    unpack_int4,
    unpack_int8,
    unpack_int16,
    unpack_rows,
    unpack_uint4,
)


class TestInt4:
    def test_known_word(self):
        # lanes little-endian: value i in bits 4i
        vals = np.array([1, 2, 3, 4, 5, 6, 7, -8])
        w = pack_int4(vals)
        assert w.dtype == np.uint32
        assert w.shape == (1,)
        assert w[0] == 0x87654321

    def test_round_trip(self):
        vals = np.arange(-8, 8, dtype=np.int64)
        out = unpack_int4(pack_int4(vals))
        np.testing.assert_array_equal(out, vals)

    def test_negative_encoding(self):
        w = pack_int4(np.array([-1] * 8))
        assert w[0] == 0xFFFFFFFF

    def test_unpack_count_truncation(self):
        vals = np.array([3, -3, 7, -7, 0, 1, 2, -8])
        out = unpack_int4(pack_int4(vals), count=5)
        np.testing.assert_array_equal(out, vals[:5])

    def test_bad_length_raises(self):
        with pytest.raises(ShapeError):
            pack_int4(np.arange(7))


class TestUint4:
    def test_round_trip(self):
        vals = np.arange(16, dtype=np.uint8)
        out = unpack_uint4(pack_uint4(vals))
        np.testing.assert_array_equal(out, vals)

    def test_full_nibbles(self):
        w = pack_uint4(np.array([0xF] * 8))
        assert w[0] == 0xFFFFFFFF


class TestInt8:
    def test_known_word(self):
        w = pack_int8(np.array([0x11, 0x22, 0x33, 0x44]))
        assert w[0] == 0x44332211

    def test_round_trip_extremes(self):
        vals = np.array([-128, 127, 0, -1, 1, -127, 126, 2])
        out = unpack_int8(pack_int8(vals))
        np.testing.assert_array_equal(out, vals)


class TestInt16:
    def test_round_trip(self):
        vals = np.array([-32768, 32767, -1, 0, 12345, -12345])
        out = unpack_int16(pack_int16(vals))
        np.testing.assert_array_equal(out, vals)

    def test_lane_order(self):
        w = pack_int16(np.array([0x1234, 0x5678]))
        assert w[0] == 0x56781234


class TestRows:
    def test_pack_rows_shape(self):
        m = np.arange(64, dtype=np.int64).reshape(4, 16) % 8
        w = pack_rows(m, 4)
        assert w.shape == (4, 2)

    def test_rows_round_trip_int8(self):
        rng = np.random.default_rng(1)
        m = rng.integers(-128, 128, size=(8, 16))
        out = unpack_rows(pack_rows(m, 8), 8)
        np.testing.assert_array_equal(out, m)

    def test_rows_bad_width(self):
        with pytest.raises(ShapeError):
            pack_rows(np.zeros((2, 5), dtype=np.int64), 8)

    def test_rows_requires_2d(self):
        with pytest.raises(ShapeError):
            pack_rows(np.zeros(8, dtype=np.int64), 8)


@settings(max_examples=60)
@given(
    st.lists(st.integers(min_value=-8, max_value=7), min_size=8, max_size=64).filter(
        lambda v: len(v) % 8 == 0
    )
)
def test_int4_round_trip_property(vals):
    arr = np.array(vals, dtype=np.int64)
    np.testing.assert_array_equal(unpack_int4(pack_int4(arr)), arr)


@settings(max_examples=60)
@given(
    st.lists(st.integers(min_value=-128, max_value=127), min_size=4, max_size=64).filter(
        lambda v: len(v) % 4 == 0
    )
)
def test_int8_round_trip_property(vals):
    arr = np.array(vals, dtype=np.int64)
    np.testing.assert_array_equal(unpack_int8(pack_int8(arr)), arr)
