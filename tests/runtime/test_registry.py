"""Backend registry: registration, ordering, resolution fallback."""

import pytest

from repro.errors import ConfigError
from repro.runtime import (
    REGISTRY,
    Backend,
    BackendCapabilities,
    BackendRegistry,
    ExecutionResult,
    get_backend,
    list_backends,
    resolve_backend,
)


class FakeBackend(Backend):
    name = "fake"
    priority = 5
    library_profile = "magicube"

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(ops=("spmm",), precisions=("int8",))

    def execute(self, op, device, config=None, **operands) -> ExecutionResult:
        raise NotImplementedError


class TestRegistration:
    def test_register_instance_and_get(self):
        reg = BackendRegistry()
        backend = FakeBackend()
        reg.register("fake", backend)
        assert reg.get("fake") is backend
        assert "fake" in reg

    def test_register_factory_instantiates_lazily(self):
        reg = BackendRegistry()
        reg.register("fake", FakeBackend)
        first = reg.get("fake")
        assert isinstance(first, FakeBackend)
        assert reg.get("fake") is first  # memoized

    def test_register_entry_point_string(self):
        reg = BackendRegistry()
        reg.register("mc", "repro.runtime.magicube:MagicubeEmulationBackend")
        assert reg.get("mc").library_profile == "magicube"

    def test_bad_entry_point_rejected(self):
        reg = BackendRegistry()
        reg.register("broken", "repro.runtime.magicube")  # no :Attr
        with pytest.raises(ConfigError):
            reg.get("broken")

    def test_duplicate_name_rejected(self):
        reg = BackendRegistry()
        reg.register("fake", FakeBackend)
        with pytest.raises(ConfigError):
            reg.register("fake", FakeBackend)

    def test_duplicate_name_with_replace(self):
        reg = BackendRegistry()
        reg.register("fake", FakeBackend)
        other = FakeBackend()
        reg.register("fake", other, replace=True)
        assert reg.get("fake") is other

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError):
            BackendRegistry().get("nope")

    def test_unregister(self):
        reg = BackendRegistry()
        reg.register("fake", FakeBackend)
        reg.unregister("fake")
        assert "fake" not in reg
        with pytest.raises(ConfigError):
            reg.unregister("fake")

    def test_factory_must_produce_backend(self):
        reg = BackendRegistry()
        reg.register("bad", dict)
        with pytest.raises(ConfigError):
            reg.get("bad")


class TestGlobalRegistry:
    def test_builtins_present(self):
        names = list_backends()
        for expected in (
            "magicube-emulation",
            "magicube-strict",
            "vector-sparse",
            "cublas-fp16",
            "cublas-int8",
            "cusparselt",
            "cusparse-blocked-ell",
            "cusparse-csr",
            "sputnik",
        ):
            assert expected in names

    def test_priority_order_is_deterministic(self):
        order = [b.name for b in REGISTRY.backends()]
        assert order == [b.name for b in REGISTRY.backends()]
        assert order[0] == "magicube-emulation"
        assert order[-1] == "magicube-strict"
        # priorities are the sort key
        priorities = [b.priority for b in REGISTRY.backends()]
        assert priorities == sorted(priorities)


class TestResolution:
    def test_default_resolution_prefers_magicube(self):
        assert resolve_backend(op="spmm", device="A100").name == "magicube-emulation"

    def test_fallback_when_backend_rejects_precision(self):
        """V100 has no integer Tensor cores: every Magicube pair is
        rejected and resolution falls through to the fp16 chain."""
        assert resolve_backend(op="spmm", device="V100").name == "vector-sparse"
        assert (
            resolve_backend(op="spmm", device="V100", precision="fp16").name
            == "vector-sparse"
        )

    def test_pair_precision_routes_to_magicube(self):
        be = resolve_backend(op="spmm", device="A100", precision="L16-R4")
        assert be.name == "magicube-emulation"

    def test_unsupported_combination_raises(self):
        with pytest.raises(ConfigError):
            resolve_backend(op="spmm", device="H100", precision="L4-R4")

    def test_pinned_backend_verified(self):
        with pytest.raises(ConfigError):
            resolve_backend("sputnik", op="sddmm", device="A100")
        assert resolve_backend("sputnik", op="spmm", device="A100").name == "sputnik"

    def test_sddmm_chain(self):
        # only magicube and vectorSparse implement SDDMM
        assert resolve_backend(op="sddmm", device="A100").name == "magicube-emulation"
        assert resolve_backend(op="sddmm", device="V100").name == "vector-sparse"

    def test_admissible_ordering(self):
        names = [b.name for b in REGISTRY.admissible("spmm", "A100")]
        assert names.index("magicube-emulation") == 0
        assert names.index("vector-sparse") < names.index("cublas-fp16")

    def test_get_backend_global(self):
        assert get_backend("cusparselt").library_profile == "cusparselt"
