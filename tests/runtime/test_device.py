"""Device handles: resolution, validation, capability gating."""

import pytest

from repro.errors import DeviceError
from repro.gpu.device import get_device, list_devices
from repro.runtime import Device


class TestResolve:
    def test_from_name(self):
        dev = Device.resolve("A100")
        assert dev.name == "A100"
        assert dev.spec is get_device("A100")

    def test_case_insensitive(self):
        assert Device.resolve("a100").name == "A100"

    def test_from_spec(self):
        dev = Device.resolve(get_device("H100"))
        assert dev.name == "H100"

    def test_from_device_is_identity(self):
        dev = Device.resolve("A100")
        assert Device.resolve(dev) is dev

    def test_unknown_name_raises_typed_error(self):
        with pytest.raises(DeviceError) as exc:
            Device.resolve("B200")
        assert "B200" in str(exc.value)
        assert "A100" in str(exc.value)  # lists the modelled devices

    def test_non_device_raises(self):
        with pytest.raises(DeviceError):
            Device.resolve(42)

    def test_all_profiles(self):
        names = [d.name for d in Device.all()]
        assert names == list_devices()
        assert {"A100", "V100", "H100", "MI250X"} <= set(names)


class TestSemantics:
    def test_equality_and_hash(self):
        a, b = Device.resolve("A100"), Device.resolve("A100")
        assert a == b and hash(a) == hash(b)
        assert a != Device.resolve("H100")
        assert len({a, b, Device.resolve("H100")}) == 2

    def test_immutability(self):
        dev = Device.resolve("A100")
        with pytest.raises(AttributeError):
            dev.spec = None

    def test_precision_gating(self):
        assert Device.resolve("A100").supports("int4")
        assert not Device.resolve("H100").supports("int4")
        assert not Device.resolve("V100").supports("int8")
        assert Device.resolve("MI250X").supports("int8")

    def test_str_is_name(self):
        assert str(Device.resolve("MI250X")) == "MI250X"
