"""Backend protocol conformance and execution parity."""

import numpy as np
import pytest

from repro import api
from repro.core.matrix import SparseMatrix
from repro.errors import ConfigError
from repro.gpu.timing import CostModel
from repro.kernels.spmm import SpMMConfig
from repro.runtime import Device, Problem, REGISTRY, get_backend
from tests.conftest import make_structured_sparse


@pytest.fixture
def weights(rng):
    return make_structured_sparse(rng, 64, 128, 8, 0.7, bits=8)


@pytest.fixture
def matrix(weights):
    return SparseMatrix.from_dense(weights, vector_length=8)


class TestProtocol:
    def test_every_builtin_answers_the_protocol(self):
        dev = Device.resolve("A100")
        for backend in REGISTRY.backends():
            caps = backend.capabilities()
            assert caps.ops and caps.precisions
            assert isinstance(backend.supports(dev, op=caps.ops[0]), bool)
            assert isinstance(backend.cost(dev, op=caps.ops[0]), CostModel)

    def test_capability_flags(self):
        caps = get_backend("magicube-emulation").capabilities()
        assert caps.int8 and caps.int4 and not caps.fp16
        assert caps.mixed_precision and caps.tensor_cores
        assert "L16-R4" in caps.pairs
        sput = get_backend("sputnik").capabilities()
        assert sput.fp16 and not sput.tensor_cores

    def test_plannable_flags(self):
        assert get_backend("magicube-emulation").plannable
        assert get_backend("vector-sparse").plannable
        assert get_backend("cublas-fp16").plannable
        assert not get_backend("cusparselt").plannable
        assert not get_backend("cusparse-blocked-ell").plannable

    def test_unknown_op_rejected(self, matrix, rng):
        with pytest.raises(ConfigError):
            get_backend("magicube-emulation").execute("conv", "A100")


class TestMagicubeExecution:
    def test_emulation_matches_reference(self, weights, matrix, rng):
        rhs = rng.integers(-128, 128, size=(128, 32))
        res = get_backend("magicube-emulation").execute(
            "spmm", "A100", config=SpMMConfig(l_bits=8, r_bits=8),
            lhs=matrix, rhs=rhs,
        )
        np.testing.assert_array_equal(res.output, weights.astype(np.int64) @ rhs)
        assert res.time_s > 0 and res.tops > 0

    def test_strict_matches_emulation(self, weights, matrix, rng):
        rhs = rng.integers(-8, 8, size=(128, 8))
        cfg = SpMMConfig(l_bits=8, r_bits=8)
        fast = get_backend("magicube-emulation").execute(
            "spmm", "A100", config=cfg, lhs=matrix, rhs=rhs
        )
        strict = get_backend("magicube-strict").execute(
            "spmm", "A100", config=cfg, lhs=matrix, rhs=rhs
        )
        np.testing.assert_array_equal(fast.output, strict.output)
        # identical accounting: both model the same CUDA kernel
        assert fast.time_s == strict.time_s

    def test_api_backend_kwarg_routes_strict(self, weights, matrix, rng):
        rhs = rng.integers(-8, 8, size=(128, 8))
        via_api = api.run(
            api.SpmmRequest(lhs=matrix, rhs=rhs, precision="L8-R8",
                            backend="magicube-strict")
        )
        np.testing.assert_array_equal(
            via_api.output, weights.astype(np.int64) @ rhs
        )

    def test_prepare_converts_to_required_stride(self, matrix):
        cfg = SpMMConfig(l_bits=4, r_bits=4)
        prepared = get_backend("magicube-emulation").prepare(
            matrix, op="spmm", config=cfg
        )
        assert prepared.stride == 32  # int4 MMA k dim


class TestBaselineExecution:
    def test_cublas_fp16(self, weights, rng):
        rhs = rng.integers(-4, 4, size=(128, 16))
        res = get_backend("cublas-fp16").execute(
            "spmm", "A100", lhs=weights, rhs=rhs
        )
        np.testing.assert_allclose(
            res.output, (weights @ rhs).astype(np.float32), rtol=1e-2
        )

    def test_vector_sparse_accepts_sparse_matrix(self, weights, matrix, rng):
        rhs = rng.integers(-4, 4, size=(128, 16))
        res = get_backend("vector-sparse").execute(
            "spmm", "A100", lhs=matrix, rhs=rhs
        )
        np.testing.assert_allclose(
            res.output, (weights @ rhs).astype(np.float32), rtol=1e-2
        )

    def test_sputnik_prepares_csr(self, weights, matrix, rng):
        rhs = rng.integers(-4, 4, size=(128, 16))
        res = get_backend("sputnik").execute("spmm", "A100", lhs=matrix, rhs=rhs)
        np.testing.assert_allclose(
            res.output, (weights @ rhs).astype(np.float32), rtol=1e-2
        )

    def test_costs_differ_between_devices(self):
        problem = Problem("spmm", 256, 512, 128, 8, 0.9)
        be = get_backend("vector-sparse")
        a100 = be.plan_candidates(problem, "A100")[0].time_s
        h100 = be.plan_candidates(problem, "H100")[0].time_s
        assert h100 < a100  # H100's fp16 peak and bandwidth dominate
