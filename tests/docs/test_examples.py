"""Executable documentation: every fenced ``python`` block must run.

The extractor walks README.md and every ``docs/*.md`` file, pulls the
fenced ```` ```python ```` blocks out, and executes each file's blocks
**in order, sharing one namespace** (notebook semantics — an early
block may define the operands a later block uses). Blocks run inside a
temporary working directory, so examples that write files
(``plans.json``, ``telemetry.json``) stay hermetic, and examples that
*read* files which do not exist exercise the library's documented
degrade-to-cold-start paths.

A failing example fails the suite with the file name and line number
of the block — the CI job that runs this is what keeps the docs from
silently rotting as the code moves.
"""

from __future__ import annotations

import re
import warnings
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
DOC_FILES = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]

_FENCE = re.compile(r"^```python[ \t]*\n(.*?)^```[ \t]*$", re.M | re.S)


def python_blocks(path: Path) -> list[tuple[int, str]]:
    """``(first line number, source)`` for every fenced python block."""
    text = path.read_text()
    return [
        (text[: match.start()].count("\n") + 2, match.group(1))
        for match in _FENCE.finditer(text)
    ]


def test_doc_files_exist():
    names = {p.name for p in DOC_FILES}
    assert "README.md" in names
    # the seven subsystem docs plus the architecture map and runbook
    for doc in ("api.md", "runtime.md", "serving.md", "autotuning.md",
                "observability.md", "fleet.md", "architecture.md",
                "operations.md"):
        assert doc in names, f"{doc} is missing from docs/"


def test_observability_doc_names_every_standard_metric():
    """The metric table in observability.md mirrors names.STANDARD_METRICS.

    The names module is the single source of truth; this is the drift
    guard its docstring promises — adding (or renaming) a metric without
    updating the documented table fails here.
    """
    from repro.obs.names import STANDARD_METRICS

    text = (REPO / "docs" / "observability.md").read_text()
    documented = set(re.findall(r"\| `(repro_[a-z_]+)` \|", text))
    declared = {name for name, _, _, _ in STANDARD_METRICS}
    assert documented == declared, (
        f"docs missing: {sorted(declared - documented)}; "
        f"stale in docs: {sorted(documented - declared)}"
    )


def test_docs_actually_contain_examples():
    """The extractor must never silently match nothing."""
    total = sum(len(python_blocks(p)) for p in DOC_FILES)
    assert total >= 10, f"only {total} fenced python blocks found"


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_examples_run(path: Path, tmp_path, monkeypatch):
    blocks = python_blocks(path)
    if not blocks:
        pytest.skip(f"{path.name} has no fenced python examples")
    monkeypatch.chdir(tmp_path)  # examples may write artifact files
    namespace: dict = {"__name__": f"docs_example_{path.stem}"}
    for lineno, source in blocks:
        code = compile(source, f"{path.name}:{lineno}", "exec")
        with warnings.catch_warnings():
            # missing-artifact warm starts warn by design; deprecations
            # must still fail — doc examples never show legacy surfaces
            warnings.simplefilter("ignore", RuntimeWarning)
            warnings.simplefilter("error", DeprecationWarning)
            try:
                exec(code, namespace)  # noqa: S102 - the point of the test
            except Exception as exc:
                pytest.fail(
                    f"{path.name} example starting at line {lineno} "
                    f"raised {type(exc).__name__}: {exc}"
                )
