"""Property-based invariants across modules (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import dense_to_bcrs, dense_to_srbcrs
from repro.gpu.memory import TrafficCounter
from repro.gpu.timing import CostModel, KernelStats
from repro.gpu.device import A100
from repro.kernels import MagicubeSpMM, SpMMConfig
from repro.kernels.emulation import stack_factor
from repro.lowp.decompose import recombine, split_signed
from tests.conftest import make_structured_sparse


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.sampled_from([0.3, 0.7, 0.9]),
    st.sampled_from([2, 4, 8]),
)
def test_spmm_matches_scipy(seed, sparsity, v):
    """Magicube SpMM == scipy.sparse CSR product on random inputs."""
    import scipy.sparse as sp

    rng = np.random.default_rng(seed)
    dense = make_structured_sparse(rng, 16, 48, v, sparsity)
    lhs = dense_to_srbcrs(dense, v, 16)
    rhs = rng.integers(-128, 128, size=(48, 24))
    out = MagicubeSpMM(SpMMConfig(l_bits=8, r_bits=8))(lhs, rhs).output
    ref = sp.csr_matrix(dense.astype(np.int64)) @ rhs.astype(np.int64)
    np.testing.assert_array_equal(out, np.asarray(ref))


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.sampled_from([(16, 4), (16, 8), (12, 4), (8, 4)]),
)
def test_digit_split_ranges(seed, spec):
    """Digits of a signed split always fit their declared types."""
    src, dig = spec
    rng = np.random.default_rng(seed)
    vals = rng.integers(-(1 << (src - 1)), 1 << (src - 1), size=64)
    digits = split_signed(vals, src, dig)
    for d in digits[:-1]:
        assert d.min() >= 0 and d.max() < (1 << dig)
    top = digits[-1]
    assert top.min() >= -(1 << (dig - 1)) and top.max() < (1 << (dig - 1))
    np.testing.assert_array_equal(recombine(digits, dig), vals)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=4),
)
def test_stack_factor_bounds(v, products):
    """Stacked MMAs never exceed 8 rows and never waste products."""
    s = stack_factor(v, products)
    assert 1 <= s <= products
    assert s * v <= 8 or s == 1


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=0, max_value=10**10),
    st.integers(min_value=0, max_value=10**10),
)
def test_cost_monotone_in_traffic(a_bytes, b_bytes):
    """More DRAM traffic never makes a kernel faster."""
    cm = CostModel(A100)
    lo, hi = sorted((a_bytes, b_bytes))
    def stats(nbytes):
        s = KernelStats()
        t = TrafficCounter()
        t.read("x", nbytes)
        s.traffic = t
        s.prefetch = True
        return s
    assert cm.time(stats(lo)) <= cm.time(stats(hi)) + 1e-15


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10**14))
def test_cost_monotone_in_ops(ops):
    """More MMA work never makes a kernel faster."""
    cm = CostModel(A100)
    def stats(n):
        s = KernelStats()
        s.mma_ops["int8"] = n
        s.prefetch = True
        return s
    assert cm.time(stats(ops)) <= cm.time(stats(ops * 2)) + 1e-15


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.sampled_from([0.5, 0.8, 0.95]),
)
def test_format_sparsity_agrees(seed, sparsity):
    """All format views of one matrix report identical nnz/sparsity."""
    rng = np.random.default_rng(seed)
    dense = make_structured_sparse(rng, 32, 64, 8, sparsity)
    bcrs = dense_to_bcrs(dense, 8)
    sr = dense_to_srbcrs(dense, 8, 16)
    assert bcrs.nnz == sr.nnz
    assert bcrs.sparsity == pytest.approx(sr.sparsity)
    np.testing.assert_array_equal(bcrs.to_dense(), sr.to_dense())


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_emulated_pairs_agree_with_each_other(seed):
    """All Table-IV SpMM pairs compute the same mathematical product
    when the operands fit the narrowest pair."""
    rng = np.random.default_rng(seed)
    dense = make_structured_sparse(rng, 16, 64, 8, 0.6, bits=4)
    rhs = rng.integers(-8, 8, size=(64, 16))
    outs = []
    for l, r in ((4, 4), (8, 4), (12, 4), (16, 4)):
        kern = MagicubeSpMM(SpMMConfig(l_bits=l, r_bits=r))
        lhs = dense_to_srbcrs(dense, 8, kern.required_stride)
        outs.append(kern(lhs, rhs).output)
    for out in outs[1:]:
        np.testing.assert_array_equal(out, outs[0])
