"""Property-based equivalence suite for the attention-mask variant zoo.

Three layers of guarantees over hypothesis-generated grids:

1. every zoo variant's quantized-sparse attention (the Fig. 16
   SDDMM -> quantized-softmax -> SpMM pipeline) approximates the
   masked-dense float reference within quantization tolerance;
2. the ``fastpath-vectorized`` kernel stack is *bit-exact* against
   ``magicube-emulation`` for every variant and scheme — an optimized
   backend may never change numerics;
3. a seeded ``TransformerRequest(mode="lra-classify")`` served through
   :func:`repro.api.open_engine` returns exactly the logits of the
   direct :class:`~repro.transformer.model.SparseTransformerClassifier`
   forward, for every mask variant in the zoo.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import get_backend
from repro.transformer.attention import KernelPipeline, MultiHeadAttention
from repro.transformer.masks import MASK_ZOO, build_mask, mask_to_additive

VARIANTS = tuple(sorted(MASK_ZOO))


def make_attn(d_model, heads, seed):
    return MultiHeadAttention(d_model, heads, np.random.default_rng(seed))


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.sampled_from([16, 32, 64]),
    st.sampled_from([1, 2]),
    st.sampled_from(VARIANTS),
    st.sampled_from([(16, 8), (8, 8)]),
)
def test_quantized_sparse_close_to_masked_dense(seed, seq_len, heads, variant, scheme):
    """Quantized-sparse attention ~= masked-dense float attention.

    The quantization tolerance is generous relative to the measured
    worst case (~3% mean relative error at 8-bit softmax) but far
    tighter than what a wrong mask or a broken kernel path produces.
    """
    sm_bits, qkv_bits = scheme
    rng = np.random.default_rng(seed)
    attn = make_attn(16, heads, seed + 1)
    mask = build_mask(variant, seq_len, sparsity=0.5, seed=seed)
    x = rng.normal(size=(1, seq_len, 16)).astype(np.float32)
    ref = attn.forward(x, mask_to_additive(mask))
    quant = attn.forward_quantized(
        x, mask, softmax_bits=sm_bits, qkv_bits=qkv_bits
    )
    rel = np.abs(quant - ref).mean() / (np.abs(ref).mean() + 1e-9)
    assert rel < 0.08, f"{variant} {scheme}: relative error {rel:.4f}"


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.sampled_from([16, 32]),
    st.sampled_from(VARIANTS),
    st.sampled_from([(16, 8), (8, 8), (8, 4)]),
)
def test_fastpath_bit_exact_vs_emulation(seed, seq_len, variant, scheme):
    """fastpath-vectorized == magicube-emulation, bit for bit, per variant."""
    sm_bits, qkv_bits = scheme
    rng = np.random.default_rng(seed)
    # d_head = 32: covers every scheme's BSk tiling (32 for L4-R4)
    attn = make_attn(64, 2, seed + 1)
    mask = build_mask(variant, seq_len, sparsity=0.5, seed=seed)
    x = rng.normal(size=(1, seq_len, 64)).astype(np.float32)
    outs = {}
    for name in ("magicube-emulation", "fastpath-vectorized"):
        be = get_backend(name)
        pipe = KernelPipeline(
            sddmm_cls=be.sddmm_kernel, spmm_cls=be.spmm_kernel
        )
        outs[name] = attn.forward_quantized(
            x, mask, softmax_bits=sm_bits, qkv_bits=qkv_bits, kernels=pipe
        )
    np.testing.assert_array_equal(
        outs["fastpath-vectorized"], outs["magicube-emulation"],
        err_msg=f"{variant} {scheme}: fastpath diverged from emulation",
    )


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.sampled_from(VARIANTS),
)
def test_zoo_masks_honor_vector_constraint(seed, variant):
    """Every built mask is V x 1 vector structured: all 8 rows of a
    strip share one column support (the 8x1 vector constraint), the
    realized sparsity is in (0, 1), no softmax row is empty, and each
    strip can still attend into its own diagonal block. (The full
    diagonal is *not* guaranteed: ``banded`` documents partial diagonal
    blocks when the nonzero budget runs out below V.)"""
    mask = build_mask(variant, 64, vector_length=8, sparsity=0.9, seed=seed)
    dense = mask.to_dense()
    assert dense.shape == (64, 64)
    strips = dense.reshape(8, 8, 64).any(axis=1)
    expanded = np.repeat(strips, 8, axis=0)
    np.testing.assert_array_equal(dense != 0, expanded)
    assert 0.0 < mask.sparsity < 1.0
    assert (dense.sum(axis=1) > 0).all(), "no row may mask out everything"
    blocks = dense.reshape(8, 8, 8, 8)  # (strip, row, col-strip, col)
    self_reach = blocks[np.arange(8), :, np.arange(8), :].any(axis=(1, 2))
    assert self_reach.all(), "every strip must reach its own block"


class TestServedLogitsExact:
    """The acceptance gate: engine-served lra-classify logits == the
    direct model forward, for every mask variant in the zoo."""

    SPEC = dict(seq_len=64, d_model=32, num_heads=2, num_layers=1)

    @pytest.fixture(scope="class")
    def client(self):
        from repro import api

        with api.open_engine(device="A100") as client:
            yield client

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_engine_matches_direct_model(self, client, variant):
        from repro import api
        from repro.transformer.model import make_quantized_kwargs
        from repro.transformer.serving import (
            TransformerSpec,
            prepare_transformer,
        )

        ids = np.random.default_rng(7).integers(0, 16, size=(2, 64))
        served = client.run(api.TransformerRequest(
            ids=ids, mask_variant=variant, session=f"zoo-{variant}",
            **self.SPEC,
        ))
        assert served.output.shape == (2, 2)
        # the direct path: same seeded model, same zoo mask, the
        # quantized kernel pipeline without any serving machinery
        prepared = prepare_transformer(
            TransformerSpec(mask_variant=variant, **self.SPEC)
        )
        quantized = make_quantized_kwargs(
            prepared.mask, 16, 8, use_kernels=True
        )
        direct = prepared.model.forward(ids, quantized=quantized)
        np.testing.assert_array_equal(
            served.output, direct,
            err_msg=f"served logits diverged from the model for {variant!r}",
        )
        # mask variants must be distinct plan-key dimensions: the plan
        # that routed this request carries the variant's realized
        # sparsity, not the 0.9 target
        assert served.plan is not None
        assert f"s={round(prepared.realized_sparsity, 3)}" in served.plan.key

    def test_variants_produce_distinct_plans(self, client):
        from repro import api

        ids = np.zeros((1, 64), dtype=np.int64)
        keys = set()
        for variant in VARIANTS:
            r = client.run(api.TransformerRequest(
                ids=ids, mask_variant=variant, session=f"zoo-{variant}",
                **self.SPEC,
            ))
            keys.add(r.plan.key)
        assert len(keys) == len(VARIANTS), (
            f"zoo variants collapsed onto {len(keys)} plan key(s): {keys}"
        )
