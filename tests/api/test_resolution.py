"""The shared resolution pipeline: requests in, Resolutions out."""

import numpy as np
import pytest

from repro import api
from repro.errors import ConfigError, DeviceError, ShapeError
from repro.kernels.sddmm import SDDMMConfig
from repro.kernels.spmm import SpMMConfig
from repro.serve.planner import ExecutionPlanner, Objective
from tests.conftest import make_structured_sparse


@pytest.fixture
def matrix(rng):
    from repro.core.matrix import SparseMatrix

    return SparseMatrix.from_dense(
        make_structured_sparse(rng, 32, 64, 8, 0.7), vector_length=8
    )


class TestNormalize:
    def test_dense_lhs_is_prepared(self, rng):
        d = make_structured_sparse(rng, 32, 64, 8, 0.7)
        req = api.normalize(api.SpmmRequest(lhs=d, rhs=np.zeros((64, 8))))
        from repro.core.matrix import SparseMatrix

        assert isinstance(req.lhs, SparseMatrix)
        np.testing.assert_array_equal(req.lhs.to_dense(), d)

    def test_prepared_lhs_passes_through(self, matrix):
        req = api.normalize(api.SpmmRequest(lhs=matrix, rhs=np.zeros((64, 8))))
        assert req.lhs is matrix

    def test_rhs_shape_checked(self, matrix):
        with pytest.raises(ShapeError, match=r"RHS must be \(64, N\)"):
            api.normalize(api.SpmmRequest(lhs=matrix, rhs=np.zeros((8, 64))))

    def test_mask_type_checked(self):
        with pytest.raises(ShapeError, match="mask must be"):
            api.normalize(
                api.SddmmRequest(a=np.zeros((8, 8)), b=np.zeros((8, 8)),
                                 mask=np.zeros((8, 8)))
            )

    def test_attention_batch_checked(self):
        with pytest.raises(ConfigError, match="batch must be >= 1"):
            api.normalize(api.AttentionRequest(seq_len=128, batch=0))

    def test_prepare_only_request_allows_missing_rhs(self, matrix):
        req = api.normalize(api.SpmmRequest(lhs=matrix))
        assert req.rhs is None


class TestOneShotResolve:
    def test_default_resolution(self, matrix):
        res = api.resolve(api.SpmmRequest(lhs=matrix, rhs=np.zeros((64, 8))))
        assert res.op == "spmm"
        assert res.device.name == "A100"
        assert res.backend == "magicube-emulation"
        assert res.precision == "L8-R8"
        assert res.plan is None
        assert isinstance(res.config, SpMMConfig)

    def test_precision_parses_into_config(self, matrix):
        res = api.resolve(
            api.SpmmRequest(lhs=matrix, rhs=np.zeros((64, 8)), precision="L16-R8")
        )
        assert (res.config.l_bits, res.config.r_bits) == (16, 8)
        assert res.precision == "L16-R8"

    def test_backend_pin(self, matrix):
        res = api.resolve(
            api.SpmmRequest(lhs=matrix, rhs=np.zeros((64, 8)),
                            backend="magicube-strict")
        )
        assert res.backend == "magicube-strict"

    def test_unknown_device_is_typed(self, matrix):
        with pytest.raises(DeviceError):
            api.resolve(
                api.SpmmRequest(lhs=matrix, rhs=np.zeros((64, 8))),
                device="TPU-v9",
            )

    def test_config_clash_spmm(self, matrix):
        rhs = np.zeros((64, 8))
        with pytest.raises(ConfigError, match="ambiguous"):
            api.resolve(api.SpmmRequest(lhs=matrix, rhs=rhs,
                                        config=SpMMConfig(), precision="L8-R8"))
        with pytest.raises(ConfigError, match="ambiguous"):
            api.resolve(api.SpmmRequest(lhs=matrix, rhs=rhs,
                                        config=SpMMConfig(), l_signed=False))
        with pytest.raises(ConfigError, match="ambiguous"):
            api.resolve(api.SpmmRequest(lhs=matrix, rhs=rhs,
                                        config=SpMMConfig(), knobs={"bsn": 32}))

    def test_config_clash_sddmm(self, matrix):
        a, b = np.zeros((32, 16)), np.zeros((16, 64))
        with pytest.raises(ConfigError, match="ambiguous"):
            api.resolve(api.SddmmRequest(a=a, b=b, mask=matrix,
                                         config=SDDMMConfig(),
                                         output_format="srbcrs"))

    def test_attention_requires_magicube_backend(self):
        with pytest.raises(ConfigError, match="cannot plan it"):
            api.resolve(api.AttentionRequest(seq_len=128, backend="sputnik"))

    def test_attention_default_backend(self):
        res = api.resolve(api.AttentionRequest(seq_len=128))
        assert res.backend == "magicube-emulation"
        assert res.precision == "L8-R8"
        # a non-magicube engine default falls back rather than erroring
        res = api.resolve(api.AttentionRequest(seq_len=128), backend="sputnik")
        assert res.backend == "magicube-emulation"


class TestPlannerResolve:
    def test_plan_lookup_memoizes(self, rng, matrix):
        planner = ExecutionPlanner(device="A100")
        rhs = rng.integers(-128, 128, size=(64, 16))
        req = api.SpmmRequest(lhs=matrix, rhs=rhs)
        res = api.resolve(req, planner=planner)
        assert res.plan is not None
        assert res.plan.key in planner.cache.keys()
        assert res.backend == res.plan.backend
        # second resolve hits the cache, same plan
        before = dict(planner.cache.stats())
        res2 = api.resolve(req, planner=planner)
        assert res2.plan.key == res.plan.key
        assert planner.cache.stats()["hits"] == before["hits"] + 1

    def test_operand_widths_bound_the_search(self, rng, matrix):
        planner = ExecutionPlanner(device="A100")
        rhs = rng.integers(-8, 8, size=(64, 16))  # int4-range RHS
        res = api.resolve(
            api.SpmmRequest(lhs=matrix, rhs=rhs), planner=planner
        )
        # weights are int8: the plan can never underflow them
        assert res.plan.l_bits >= 8

    def test_precision_pins_the_plan(self, rng, matrix):
        planner = ExecutionPlanner(device="A100")
        rhs = rng.integers(-128, 128, size=(64, 16))
        res = api.resolve(
            api.SpmmRequest(lhs=matrix, rhs=rhs, precision="L16-R8"),
            planner=planner,
        )
        assert (res.plan.l_bits, res.plan.r_bits) == (16, 8)

    def test_injected_config_bypasses_planner(self, rng, matrix):
        planner = ExecutionPlanner(device="A100")
        rhs = rng.integers(-128, 128, size=(64, 16))
        res = api.resolve(
            api.SpmmRequest(lhs=matrix, rhs=rhs, config=SpMMConfig()),
            planner=planner,
        )
        assert res.plan is None
        assert len(planner.cache) == 0

    def test_missing_rhs_is_typed(self, matrix):
        planner = ExecutionPlanner(device="A100")
        with pytest.raises(ConfigError, match="rhs is required"):
            api.resolve(api.SpmmRequest(lhs=matrix), planner=planner)

    def test_sddmm_plan(self, rng, matrix):
        planner = ExecutionPlanner(device="A100")
        a = rng.integers(-128, 128, size=(32, 48))
        b = rng.integers(-128, 128, size=(48, 64))
        res = api.resolve(
            api.SddmmRequest(a=a, b=b, mask=matrix), planner=planner
        )
        assert res.op == "sddmm"
        assert res.plan is not None
        assert res.plan.op == "sddmm"


class TestRun:
    def test_spmm_exact(self, rng):
        d = make_structured_sparse(rng, 32, 64, 8, 0.7)
        from repro.core.matrix import SparseMatrix

        a = SparseMatrix.from_dense(d, 8)
        rhs = rng.integers(-128, 128, size=(64, 32))
        r = api.run(api.SpmmRequest(lhs=a, rhs=rhs, precision="L8-R8"))
        np.testing.assert_array_equal(r.output, d.astype(np.int64) @ rhs)
        assert r.time_s > 0 and r.tops > 0
        assert r.backend == "magicube-emulation"
        assert r.device == "A100"
        assert r.request_time_s == r.time_s  # one-shot: no amortization

    def test_sddmm_exact(self, rng):
        from repro.core.matrix import SparseMatrix

        mask_d = (make_structured_sparse(rng, 16, 32, 8, 0.5) != 0).astype(np.int32)
        mask = SparseMatrix.from_dense(mask_d, 8)
        a = rng.integers(-128, 128, size=(16, 64))
        b = rng.integers(-128, 128, size=(64, 32))
        r = api.run(api.SddmmRequest(a=a, b=b, mask=mask, precision="L8-R8"))
        full = a.astype(np.int64) @ b
        got = r.output.to_dense()
        keep = got != 0
        np.testing.assert_array_equal(got[keep], full[keep])

    def test_attention_latency_model(self):
        r = api.run(api.AttentionRequest(seq_len=256, num_heads=2))
        assert r.output is None
        assert r.time_s > 0
        assert r.stats is not None and r.stats.total_s == r.time_s
        assert r.detail is r.stats  # pre-v1 spelling

    def test_device_steers_cost(self, rng, matrix):
        rhs = rng.integers(-128, 128, size=(64, 16))
        t_a100 = api.run(api.SpmmRequest(lhs=matrix, rhs=rhs), device="A100").time_s
        t_h100 = api.run(api.SpmmRequest(lhs=matrix, rhs=rhs), device="H100").time_s
        assert t_h100 < t_a100


class TestResponseCompat:
    def test_alias_properties(self):
        r = api.Response(output=None, time_s=0.5, stats="detail")
        assert r.modelled_time_s == 0.5
        assert r.detail == "detail"
        assert r.request_time_s == 0.5

    def test_supersedes_old_names(self):
        from repro import OpResult
        from repro.serve import ServeResult

        assert OpResult is api.Response
        assert ServeResult is api.Response


class TestBitsRequired:
    def test_reexported_and_correct(self):
        assert api.bits_required(np.array([-8, 7])) == 4
        assert api.bits_required(np.array([300])) == 12
        with pytest.raises(ConfigError):
            api.bits_required(np.array([1 << 20]))
