"""The open_engine / Client facade: three verbs, every request type."""

import numpy as np
import pytest

import repro
from repro import api
from repro.errors import AdmissionError, ConfigError, EngineClosedError
from repro.serve.batcher import BatchPolicy
from repro.serve.cache import PlanCache
from repro.serve.planner import ExecutionPlanner
from repro.serve.telemetry import Telemetry
from tests.conftest import make_structured_sparse


@pytest.fixture
def matrix(rng):
    return repro.SparseMatrix.from_dense(
        make_structured_sparse(rng, 32, 64, 8, 0.7), vector_length=8
    )


@pytest.fixture
def rhs(rng):
    return rng.integers(-128, 128, size=(64, 16))


class TestVerbs:
    def test_run_matches_one_shot(self, matrix, rhs):
        with repro.open_engine() as client:
            served = client.run(api.SpmmRequest(lhs=matrix, rhs=rhs))
        direct = api.run(
            api.SpmmRequest(lhs=matrix, rhs=rhs, precision=served.plan.precision)
        )
        np.testing.assert_array_equal(served.output, direct.output)

    def test_submit_returns_future(self, matrix, rhs):
        with repro.open_engine() as client:
            fut = client.submit(api.SpmmRequest(lhs=matrix, rhs=rhs))
            client.flush()
            r = fut.result(timeout=10)
        assert r.plan is not None and r.batch_size >= 1

    def test_submit_async_ticket(self, matrix, rhs):
        with repro.open_engine() as client:
            handle = client.submit_async(api.SpmmRequest(lhs=matrix, rhs=rhs))
            client.flush()
            r = client.result(handle, timeout=10)
        assert r.output is not None

    def test_attention_request(self):
        with repro.open_engine() as client:
            r = client.run(api.AttentionRequest(seq_len=256, num_heads=2))
        assert r.output is None and r.time_s > 0

    def test_sddmm_request(self, rng, matrix):
        a = rng.integers(-128, 128, size=(32, 48))
        b = rng.integers(-128, 128, size=(48, 64))
        with repro.open_engine() as client:
            served = client.run(api.SddmmRequest(a=a, b=b, mask=matrix))
        direct = api.run(
            api.SddmmRequest(a=a, b=b, mask=matrix,
                             precision=served.plan.precision)
        )
        np.testing.assert_array_equal(
            served.output.to_dense(), direct.output.to_dense()
        )

    def test_scale_applies_and_groups(self, matrix, rhs):
        with repro.open_engine() as client:
            plain = client.run(api.SpmmRequest(lhs=matrix, rhs=rhs))
            scaled = client.run(api.SpmmRequest(lhs=matrix, rhs=rhs, scale=0.5))
        np.testing.assert_allclose(scaled.output, plain.output * 0.5)


class TestSessions:
    def test_same_operand_reuses_session(self, matrix, rhs):
        with repro.open_engine() as client:
            s1 = client.prepare(api.SpmmRequest(lhs=matrix, rhs=rhs))
            s2 = client.prepare(api.SpmmRequest(lhs=matrix, rhs=rhs))
            assert s1 is s2
            client.run(api.SpmmRequest(lhs=matrix, rhs=rhs))
            assert client.telemetry.sessions() == [s1.name]

    def test_named_session(self, matrix, rhs):
        with repro.open_engine() as client:
            client.run(api.SpmmRequest(lhs=matrix, rhs=rhs, session="ffn"))
            assert client.telemetry.sessions() == ["ffn"]

    def test_attention_topology_is_the_key(self):
        with repro.open_engine() as client:
            s1 = client.prepare(api.AttentionRequest(seq_len=256))
            s2 = client.prepare(api.AttentionRequest(seq_len=256, batch=3))
            s3 = client.prepare(api.AttentionRequest(seq_len=512))
            assert s1 is s2
            assert s3 is not s1

    def test_precision_pins_serving_plan(self, matrix, rhs):
        with repro.open_engine() as client:
            r = client.run(
                api.SpmmRequest(lhs=matrix, rhs=rhs, precision="L16-R8")
            )
        assert r.precision == "L16-R8"
        assert (r.plan.l_bits, r.plan.r_bits) == (16, 8)

    def test_injected_config_served(self, matrix, rhs):
        from repro.kernels.spmm import SpMMConfig

        with repro.open_engine() as client:
            r = client.run(
                api.SpmmRequest(lhs=matrix, rhs=rhs,
                                config=SpMMConfig(l_bits=8, r_bits=8))
            )
        assert r.plan is None
        direct = api.run(api.SpmmRequest(lhs=matrix, rhs=rhs, precision="L8-R8"))
        np.testing.assert_array_equal(r.output, direct.output)

    def test_backend_pin(self, matrix, rhs):
        with repro.open_engine() as client:
            r = client.run(
                api.SpmmRequest(lhs=matrix, rhs=rhs, backend="magicube-strict")
            )
        assert r.backend == "magicube-strict"

    def test_named_session_rejects_swapped_operand(self, rng, matrix, rhs):
        other = repro.SparseMatrix.from_dense(
            make_structured_sparse(rng, 32, 64, 8, 0.5), vector_length=8
        )
        with repro.open_engine() as client:
            client.run(api.SpmmRequest(lhs=matrix, rhs=rhs, session="s"))
            with pytest.raises(ConfigError, match="different lhs"):
                client.run(api.SpmmRequest(lhs=other, rhs=rhs, session="s"))

    def test_named_session_rejects_swapped_mask(self, rng, matrix):
        a = rng.integers(-128, 128, size=(32, 48))
        b = rng.integers(-128, 128, size=(48, 64))
        other = repro.SparseMatrix.from_dense(
            make_structured_sparse(rng, 32, 64, 8, 0.5), vector_length=8
        )
        with repro.open_engine() as client:
            client.run(api.SddmmRequest(a=a, b=b, mask=matrix, session="s"))
            with pytest.raises(ConfigError, match="different mask"):
                client.run(api.SddmmRequest(a=a, b=b, mask=other, session="s"))

    def test_named_attention_session_rejects_topology_mismatch(self):
        with repro.open_engine() as client:
            client.run(api.AttentionRequest(seq_len=256, session="a"))
            with pytest.raises(ConfigError, match="serves topology"):
                client.run(api.AttentionRequest(seq_len=512, session="a"))

    def test_mixed_backends_never_coalesce(self, matrix, rhs):
        with repro.open_engine(
            policy=BatchPolicy(max_batch_size=8, max_wait_s=60.0)
        ) as client:
            fast = client.submit(
                api.SpmmRequest(lhs=matrix, rhs=rhs, session="w")
            )
            strict = client.submit(
                api.SpmmRequest(lhs=matrix, rhs=rhs, session="w",
                                backend="magicube-strict")
            )
            client.flush()
            r_fast, r_strict = fast.result(10), strict.result(10)
        assert r_fast.backend == "magicube-emulation"
        assert r_strict.backend == "magicube-strict"
        # two resolutions, two launches — never one contaminated batch
        assert r_fast.batch_size == 1 and r_strict.batch_size == 1
        np.testing.assert_array_equal(r_fast.output, r_strict.output)


class TestConstructorThreading:
    def test_policy_admission(self, matrix, rhs):
        with repro.open_engine(
            policy=BatchPolicy(max_batch_size=2, max_wait_s=60.0,
                               max_queue_depth=1)
        ) as client:
            client.submit(api.SpmmRequest(lhs=matrix, rhs=rhs, session="w"))
            with pytest.raises(AdmissionError):
                client.submit(api.SpmmRequest(lhs=matrix, rhs=rhs, session="w"))
            assert client.telemetry.rejections() == 1
            client.flush()

    def test_telemetry_injection(self, matrix, rhs):
        telemetry = Telemetry()
        with repro.open_engine(telemetry=telemetry) as client:
            assert client.telemetry is telemetry
            client.run(api.SpmmRequest(lhs=matrix, rhs=rhs, session="w"))
        assert telemetry.sessions() == ["w"]

    def test_cache_injection(self):
        cache = PlanCache()
        with repro.open_engine(cache=cache) as client:
            assert client.planner.cache is cache

    def test_planner_and_cache_conflict(self):
        with pytest.raises(ConfigError):
            repro.open_engine(planner=ExecutionPlanner(), cache=PlanCache())

    def test_warm_start_preloads(self, tmp_path, matrix):
        from repro.autotune.artifact import write_artifact

        planner = ExecutionPlanner(device="A100")
        planner.plan_spmm(32, 64, 16, 8, matrix.sparsity)
        plans, _ = write_artifact(tmp_path / "plans.json", planner.cache)
        with repro.open_engine(warm_start=plans) as client:
            assert len(client.planner.cache) == len(planner.cache)

    def test_device_and_backend(self):
        with repro.open_engine(device="H100") as client:
            assert client.device == "H100"
            assert client.backend == "magicube-emulation"


class TestClose:
    def test_close_is_idempotent(self):
        client = repro.open_engine()
        client.close()
        client.close()
        assert client.closed

    def test_submit_after_close_is_typed(self, matrix, rhs):
        client = repro.open_engine()
        client.close()
        with pytest.raises(EngineClosedError):
            client.submit(api.SpmmRequest(lhs=matrix, rhs=rhs))

    def test_engine_submit_after_close_is_typed(self, matrix, rhs):
        client = repro.open_engine()
        client.prepare(api.SpmmRequest(lhs=matrix, session="w"))
        client.close()
        with pytest.raises(EngineClosedError):
            client.engine.submit("w", rhs)

    def test_unknown_ticket_after_close_is_typed(self):
        client = repro.open_engine()
        client.close()
        with pytest.raises(EngineClosedError):
            client.result(123456)

    def test_unknown_ticket_before_close_is_config_error(self):
        with repro.open_engine() as client:
            with pytest.raises(ConfigError):
                client.result(123456)

    def test_resolved_tickets_survive_close(self, matrix, rhs):
        client = repro.open_engine()
        handle = client.submit_async(api.SpmmRequest(lhs=matrix, rhs=rhs))
        client.flush()
        handle.result(timeout=10)
        client.close()
        assert client.result(handle).output is not None

    def test_error_family(self):
        assert issubclass(EngineClosedError, repro.ReproError)
        assert issubclass(EngineClosedError, RuntimeError)
