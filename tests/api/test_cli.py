"""The unified ``repro`` console entry point."""

import pytest

from repro.cli import main


class TestDispatch:
    def test_help_lists_subcommands(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        for command in ("serve", "autotune", "bench"):
            assert command in out

    def test_no_args_prints_help(self, capsys):
        assert main([]) == 2
        assert "serve" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "unknown command" in capsys.readouterr().err

    def test_version(self, capsys):
        from repro import __version__

        assert main(["--version"]) == 0
        assert __version__ in capsys.readouterr().out

    def test_serve_delegates(self, capsys):
        assert main(["serve", "--plan", "spmm:512x512x64:v=8:s=0.9"]) == 0
        out = capsys.readouterr().out
        assert "precision:" in out

    def test_bench_delegates(self, capsys):
        assert main(["bench", "--list"]) == 0
        assert "table1" in capsys.readouterr().out

    def test_autotune_delegates(self, tmp_path, capsys):
        rc = main([
            "autotune", "sweep", "--device", "A100",
            "--shape", "256x256x64", "--min-bits", "8x8",
            "--repeats", "1", "--trials", "4", "--quiet",
            "--out", str(tmp_path / "plans.json"),
        ])
        assert rc == 0
        assert (tmp_path / "plans.json").exists()
        assert (tmp_path / "plans.manifest.json").exists()

    def test_subcommand_help_passthrough(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--help"])
        assert exc.value.code == 0
        assert "--demo" in capsys.readouterr().out


class TestModuleEntrypoint:
    def test_python_m_repro(self):
        import runpy
        import sys
        from unittest import mock

        with mock.patch.object(sys, "argv", ["repro", "bench", "--list"]):
            with pytest.raises(SystemExit) as exc:
                runpy.run_module("repro", run_name="__main__")
        assert exc.value.code == 0
