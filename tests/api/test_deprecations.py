"""Every legacy call path warns and returns results identical to v1."""

import warnings

import numpy as np
import pytest

import repro
from repro import api
from repro.serve.engine import Engine
from tests.conftest import make_structured_sparse

pytestmark = pytest.mark.legacy


@pytest.fixture
def matrix(rng):
    return repro.SparseMatrix.from_dense(
        make_structured_sparse(rng, 32, 64, 8, 0.7), vector_length=8
    )


@pytest.fixture
def rhs(rng):
    return rng.integers(-128, 128, size=(64, 16))


class TestKwargShims:
    def test_spmm_warns_and_matches_v1(self, matrix, rhs):
        with pytest.warns(DeprecationWarning, match="repro.core.api.spmm"):
            legacy = repro.spmm(matrix, rhs, precision="L8-R8")
        v1 = api.run(api.SpmmRequest(lhs=matrix, rhs=rhs, precision="L8-R8"))
        np.testing.assert_array_equal(legacy.output, v1.output)
        assert legacy.time_s == v1.time_s
        assert legacy.tops == v1.tops

    def test_spmm_knobs_and_scale(self, matrix, rhs):
        with pytest.warns(DeprecationWarning):
            legacy = repro.spmm(matrix, rhs, scale=0.5, conflict_free=False)
        v1 = api.run(
            api.SpmmRequest(lhs=matrix, rhs=rhs, scale=0.5,
                            knobs={"conflict_free": False})
        )
        np.testing.assert_array_equal(legacy.output, v1.output)
        assert legacy.stats.notes == v1.stats.notes

    def test_spmm_clash_still_raises(self, matrix, rhs):
        from repro.errors import ConfigError
        from repro.kernels.spmm import SpMMConfig

        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigError, match="ambiguous"):
                repro.spmm(matrix, rhs, precision="L8-R8", config=SpMMConfig())

    def test_sddmm_warns_and_matches_v1(self, rng, matrix):
        a = rng.integers(-128, 128, size=(32, 48))
        b = rng.integers(-128, 128, size=(48, 64))
        with pytest.warns(DeprecationWarning, match="repro.core.api.sddmm"):
            legacy = repro.sddmm(a, b, matrix, precision="L8-R8")
        v1 = api.run(api.SddmmRequest(a=a, b=b, mask=matrix, precision="L8-R8"))
        np.testing.assert_array_equal(
            legacy.output.to_dense(), v1.output.to_dense()
        )
        assert legacy.time_s == v1.time_s

    def test_warns_once_per_call_site(self, matrix, rhs):
        with warnings.catch_warnings(record=True) as seen:
            warnings.resetwarnings()
            warnings.simplefilter("default")
            for _ in range(3):
                repro.spmm(matrix, rhs)  # one call site, three calls
        deprecations = [w for w in seen if w.category is DeprecationWarning]
        assert len(deprecations) == 1


class TestSessionShims:
    def test_spmm_session_warns_and_matches_v1(self, matrix, rhs):
        with Engine() as engine:
            with pytest.warns(DeprecationWarning, match="spmm_session"):
                session = engine.spmm_session("w", matrix)
            legacy = session.run(rhs)
        with repro.open_engine() as client:
            v1 = client.run(api.SpmmRequest(lhs=matrix, rhs=rhs, session="w"))
        np.testing.assert_array_equal(legacy.output, v1.output)
        assert legacy.plan.precision == v1.plan.precision
        assert legacy.modelled_time_s == v1.modelled_time_s

    def test_attention_session_warns_and_matches_v1(self):
        with Engine() as engine:
            with pytest.warns(DeprecationWarning, match="attention_session"):
                session = engine.attention_session("attn", seq_len=256)
            legacy = session.run(batch=2)
        with repro.open_engine() as client:
            v1 = client.run(api.AttentionRequest(seq_len=256, batch=2))
        assert legacy.time_s == v1.time_s
        assert legacy.detail.total_s == v1.stats.total_s


class TestCliShims:
    def test_repro_serve_warns_and_delegates(self, capsys):
        from repro.cli import serve_main

        with pytest.warns(DeprecationWarning, match="repro-serve"):
            rc = serve_main(["--plan", "spmm:512x512x64:v=8:s=0.9"])
        assert rc == 0
        assert "precision:" in capsys.readouterr().out

    def test_repro_bench_warns_and_delegates(self, capsys):
        from repro.cli import bench_main

        with pytest.warns(DeprecationWarning, match="repro-bench"):
            rc = bench_main(["--list"])
        assert rc == 0
        assert "serve" in capsys.readouterr().out

    def test_repro_autotune_warns_and_delegates(self):
        from repro.cli import autotune_main

        with pytest.warns(DeprecationWarning, match="repro-autotune"):
            with pytest.raises(SystemExit) as exc:
                autotune_main(["--help"])
        assert exc.value.code == 0
