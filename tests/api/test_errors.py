"""One exception family: every typed error is a ReproError."""

import pytest

import repro
from repro import errors


def _error_classes():
    return [
        obj
        for obj in vars(errors).values()
        if isinstance(obj, type) and issubclass(obj, Exception)
    ]


class TestFamily:
    def test_every_error_is_a_repro_error(self):
        for cls in _error_classes():
            assert issubclass(cls, errors.ReproError), cls

    def test_magicube_error_is_the_same_family(self):
        # the pre-v1 base name still catches everything
        assert errors.MagicubeError is errors.ReproError
        for cls in _error_classes():
            assert issubclass(cls, errors.MagicubeError), cls

    def test_catch_at_the_api_boundary(self, rng):
        from repro import api

        with pytest.raises(repro.ReproError):
            api.run(api.AttentionRequest(seq_len=128, batch=0))
        with pytest.raises(repro.ReproError):
            api.resolve(
                api.SpmmRequest(lhs=rng.integers(0, 2, size=(8, 8))),
                device="TPU-v9",
            )

    def test_compat_subclasses(self):
        assert issubclass(errors.PlanCacheError, ValueError)
        assert issubclass(errors.EngineClosedError, RuntimeError)

    def test_exported_from_repro(self):
        assert repro.ReproError is errors.ReproError
        assert repro.EngineClosedError is errors.EngineClosedError
