"""Tests for the comparator libraries."""

import numpy as np
import pytest

from repro.baselines import (
    CublasGemm,
    CusparseBlockedEllSpMM,
    CusparseCsrSpMM,
    CusparseLt24Gemm,
    SputnikSpMM,
    VectorSparseSDDMM,
    VectorSparseSpMM,
    cost_model_for,
)
from repro.baselines.cusparselt import is_2to4, prune_2to4
from repro.errors import ConfigError, FormatError, PrecisionError
from repro.formats import (
    dense_to_bcrs,
    dense_to_blocked_ell,
    dense_to_csr,
)
from tests.conftest import make_structured_sparse


class TestCublas:
    def test_int8_exact(self, rng):
        a = rng.integers(-128, 128, size=(16, 32))
        b = rng.integers(-128, 128, size=(32, 8))
        res = CublasGemm("int8")(a, b)
        np.testing.assert_array_equal(res.output, a @ b)

    def test_fp16_close(self, rng):
        a = rng.normal(size=(16, 32)).astype(np.float32)
        b = rng.normal(size=(32, 8)).astype(np.float32)
        res = CublasGemm("fp16")(a, b)
        np.testing.assert_allclose(res.output, a @ b, rtol=2e-2, atol=2e-2)

    def test_range_check(self, rng):
        with pytest.raises(PrecisionError):
            CublasGemm("int8")(np.full((2, 2), 300), np.ones((2, 2), dtype=int))

    def test_unknown_precision(self):
        with pytest.raises(PrecisionError):
            CublasGemm("int4")

    def test_dense_ops_counted(self, rng):
        res = CublasGemm("fp16")(np.ones((8, 16)), np.ones((16, 4)))
        assert res.stats.mma_ops["fp16"] == 2 * 8 * 16 * 4


class TestCusparse:
    def test_blocked_ell_exact_int8(self, rng):
        d = make_structured_sparse(rng, 32, 64, 8, 0.8)
        ell = dense_to_blocked_ell(d, 8)
        rhs = rng.integers(-128, 128, size=(64, 16))
        res = CusparseBlockedEllSpMM("int8")(ell, rhs)
        np.testing.assert_array_equal(res.output, d.astype(np.int64) @ rhs)

    def test_blocked_ell_charges_padding(self, rng):
        d = np.zeros((16, 64), dtype=np.int32)
        d[0:8, 0:40] = 1
        d[8:16, 0:8] = 1
        ell = dense_to_blocked_ell(d, 8)
        res = CusparseBlockedEllSpMM("int8")(ell, rng.integers(-8, 8, size=(64, 8)))
        # op count covers the padded slots, not just true blocks
        assert res.stats.mma_ops["int8"] == 2 * (2 * 5) * 64 * 8
        assert res.stats.useful_ops < res.stats.mma_ops["int8"]

    def test_csr_matches_dense(self, rng):
        d = make_structured_sparse(rng, 16, 32, 1, 0.7)
        rhs = rng.normal(size=(32, 8)).astype(np.float32)
        res = CusparseCsrSpMM()(dense_to_csr(d), rhs)
        np.testing.assert_allclose(res.output, d @ rhs, rtol=1e-4, atol=1e-4)


class TestSputnik:
    def test_matches_dense(self, rng):
        d = make_structured_sparse(rng, 16, 32, 1, 0.7)
        rhs = rng.normal(size=(32, 8)).astype(np.float32)
        res = SputnikSpMM("fp32")(dense_to_csr(d), rhs)
        np.testing.assert_allclose(res.output, d @ rhs, rtol=1e-5)

    def test_runs_on_cuda_cores(self, rng):
        d = make_structured_sparse(rng, 8, 16, 1, 0.5)
        res = SputnikSpMM("fp16")(dense_to_csr(d), np.ones((16, 4), dtype=np.float32))
        assert "fp16_cuda" in res.stats.mma_ops

    def test_bad_precision(self):
        with pytest.raises(PrecisionError):
            SputnikSpMM("int8")


class TestVectorSparse:
    def test_spmm_close_to_dense(self, rng):
        d = make_structured_sparse(rng, 32, 64, 8, 0.7)
        rhs = rng.normal(size=(64, 16)).astype(np.float32)
        res = VectorSparseSpMM()(dense_to_bcrs(d, 8), rhs)
        np.testing.assert_allclose(res.output, d @ rhs, rtol=2e-2, atol=0.5)

    def test_sddmm_topology(self, rng):
        d = make_structured_sparse(rng, 16, 32, 8, 0.5)
        mask = dense_to_bcrs((d != 0).astype(np.int32), 8)
        a = rng.normal(size=(16, 16)).astype(np.float32)
        b = rng.normal(size=(16, 32)).astype(np.float32)
        res = VectorSparseSDDMM()(a, b, mask)
        np.testing.assert_array_equal(res.output.col_indices, mask.col_indices)

    def test_fp16_ops_charged_at_16_rows(self, rng):
        """wmma m16n16k16 with V<=8: the m dim is half wasted."""
        d = make_structured_sparse(rng, 16, 64, 8, 0.5)
        bcrs = dense_to_bcrs(d, 8)
        res = VectorSparseSpMM()(bcrs, np.zeros((64, 8), dtype=np.float32))
        assert res.stats.mma_ops["fp16"] >= 2 * bcrs.num_vectors * 16 * 8


class TestCusparseLt:
    def test_pattern_check(self):
        good = np.array([[1, 2, 0, 0, 0, 1, 1, 0]])
        bad = np.array([[1, 2, 3, 0, 0, 0, 0, 0]])
        assert is_2to4(good)
        assert not is_2to4(bad)

    def test_prune_produces_pattern(self, rng):
        d = rng.normal(size=(8, 16))
        p = prune_2to4(d)
        assert is_2to4(p)
        # kept values are the 2 largest magnitudes of each group
        groups_in = np.abs(d.reshape(8, 4, 4))
        kept = (p.reshape(8, 4, 4) != 0).sum(axis=2)
        assert kept.max() <= 2

    def test_rejects_unstructured(self, rng):
        with pytest.raises(FormatError):
            CusparseLt24Gemm("int8")(
                np.ones((4, 8), dtype=np.int64), np.ones((8, 4), dtype=np.int64)
            )

    def test_structured_gemm_exact(self, rng):
        a = prune_2to4(rng.integers(-8, 8, size=(8, 16)))
        b = rng.integers(-8, 8, size=(16, 8))
        res = CusparseLt24Gemm("int8")(a, b)
        np.testing.assert_array_equal(res.output, a @ b)

    def test_half_the_dense_ops(self, rng):
        a = prune_2to4(rng.integers(-8, 8, size=(8, 16)))
        res = CusparseLt24Gemm("int8")(a, np.ones((16, 8), dtype=np.int64))
        assert res.stats.mma_ops["int8"] == 8 * 16 * 8  # = 2*m*n*k / 2


class TestCalibration:
    def test_all_profiles_build(self):
        from repro.baselines.calibration import profiles

        for p in profiles():
            cm = cost_model_for(p)
            assert cm.compute_efficiency > 0

    def test_unknown_profile(self):
        with pytest.raises(ConfigError):
            cost_model_for("mkl")

    def test_device_override(self):
        cm = cost_model_for("magicube", "H100")
        assert cm.device.name == "H100"


class TestCapabilities:
    def test_table1_rows(self):
        from repro.baselines import LIBRARIES, capability_table

        names = [l.name for l in LIBRARIES]
        assert names == [
            "cuSPARSE",
            "cuSPARSELt",
            "Sputnik",
            "vectorSparse",
            "Magicube",
        ]
        magicube = LIBRARIES[-1]
        assert magicube.int4 and magicube.mixed and magicube.tensor_cores
        assert not magicube.fp16
        table = capability_table()
        assert "Magicube" in table and "2:4 structured" in table
