"""Traffic replay: arrival schedules, BENCH_serve.json, the compare gate."""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench.loadgen import (
    BENCH_SCHEMA,
    ReplayConfig,
    arrival_offsets,
    compare_main,
    compare_reports,
    render_replay_report,
    run_replay,
)
from repro.errors import ConfigError


class TestArrivalSchedules:
    def test_uniform_ticks_at_the_rate(self):
        offsets = arrival_offsets(
            ReplayConfig(requests=5, arrival="uniform", rate_rps=100.0)
        )
        assert offsets == pytest.approx([0.0, 0.01, 0.02, 0.03, 0.04])

    def test_poisson_is_seeded_and_monotonic(self):
        cfg = ReplayConfig(requests=50, arrival="poisson", seed=7)
        a, b = arrival_offsets(cfg), arrival_offsets(cfg)
        assert a == b
        assert a[0] == 0.0
        assert all(x <= y for x, y in zip(a, a[1:]))
        assert a != arrival_offsets(
            ReplayConfig(requests=50, arrival="poisson", seed=8)
        )

    def test_poisson_hits_the_average_rate(self):
        cfg = ReplayConfig(requests=2000, arrival="poisson", rate_rps=100.0)
        offsets = arrival_offsets(cfg)
        assert offsets[-1] == pytest.approx(2000 / 100.0, rel=0.2)

    def test_bursty_arrivals_come_in_groups(self):
        cfg = ReplayConfig(requests=32, arrival="bursty", burst_size=8)
        offsets = arrival_offsets(cfg)
        assert len(offsets) == 32
        assert len(set(offsets)) == 4  # 4 bursts of 8 identical offsets

    def test_trace_driven_arrivals(self, tmp_path):
        trace = tmp_path / "arrivals.json"
        trace.write_text(json.dumps([10.0, 10.1, 10.3]))
        offsets = arrival_offsets(ReplayConfig(
            requests=3, arrival="trace", trace_path=trace
        ))
        assert offsets == pytest.approx([0.0, 0.1, 0.3])  # re-based to 0

    def test_trace_cycles_to_fill_the_request_count(self, tmp_path):
        trace = tmp_path / "arrivals.json"
        trace.write_text(json.dumps([0.0, 0.1]))
        offsets = arrival_offsets(ReplayConfig(
            requests=5, arrival="trace", trace_path=trace
        ))
        assert len(offsets) == 5
        assert all(x <= y for x, y in zip(offsets, offsets[1:]))

    def test_config_validation(self, tmp_path):
        with pytest.raises(ConfigError):
            ReplayConfig(requests=0)
        with pytest.raises(ConfigError):
            ReplayConfig(arrival="chaotic")
        with pytest.raises(ConfigError):
            ReplayConfig(arrival="trace")  # no trace_path
        with pytest.raises(ConfigError):
            ReplayConfig(mix=())
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(ConfigError):
            arrival_offsets(ReplayConfig(arrival="trace", trace_path=bad))


@pytest.fixture(scope="module")
def replay_artifacts(tmp_path_factory):
    """One small end-to-end replay shared by the artifact tests."""
    tmp = tmp_path_factory.mktemp("replay")
    config = ReplayConfig(requests=24, arrival="uniform", rate_rps=2000.0, seed=3)
    report = run_replay(
        config,
        out=tmp / "BENCH_serve.json",
        metrics_out=tmp / "BENCH_serve.metrics.json",
        trace_out=tmp / "BENCH_serve.trace.jsonl",
        health_out=tmp / "BENCH_serve.health.json",
        profile_out=tmp / "BENCH_serve.profile.json",
        folded_out=tmp / "BENCH_serve.folded.txt",
    )
    return tmp, report


class TestRunReplay:
    def test_report_schema_and_shape(self, replay_artifacts):
        _, report = replay_artifacts
        assert report["schema"] == BENCH_SCHEMA
        assert report["bench"] == "serve-replay"
        r = report["results"]
        assert r["requests"]["completed"] == 24
        assert r["requests"]["completed"] + r["requests"]["rejected"] == 24
        for series in ("wall", "modelled", "queue_wait"):
            stats = r["latency_s"][series]
            assert stats["count"] == 24
            assert 0.0 <= stats["p50"] <= stats["p95"] <= stats["p99"]
        assert r["throughput"]["completed_rps"] > 0
        assert r["throughput"]["saturation_rps"] > 0
        assert 0.0 <= r["plan_cache"]["hit_rate"] <= 1.0
        assert r["batching"]["batches"] >= 1

    def test_artifacts_written_and_loadable(self, replay_artifacts):
        tmp, report = replay_artifacts
        on_disk = json.loads((tmp / "BENCH_serve.json").read_text())
        assert on_disk == report

        from repro.obs import names
        from repro.obs.export import load_json

        registry = load_json((tmp / "BENCH_serve.metrics.json").read_text())
        totals = sum(
            c.value for _, c in registry.samples(names.REQUESTS)
        )
        assert totals == 24

        lines = (tmp / "BENCH_serve.trace.jsonl").read_text().splitlines()
        assert len(lines) == 24
        first = json.loads(lines[0])
        assert {s["name"] for s in first["spans"]} >= {
            "admission", "plan-resolution", "queue", "kernel-launch",
        }

    def test_render_is_human_readable(self, replay_artifacts):
        _, report = replay_artifacts
        text = render_replay_report(report)
        assert "traffic replay" in text
        assert "p99" in text and "rejected by admission" in text
        assert "health:" in text and "profile:" in text

    def test_render_tolerates_pre_health_artifacts(self, replay_artifacts):
        # artifacts recorded before the health/profile sections existed
        # must still render (the compare gate reads old baselines)
        _, report = replay_artifacts
        old = json.loads(json.dumps(report))
        del old["results"]["health"]
        del old["results"]["profile"]
        text = render_replay_report(old)
        assert "traffic replay" in text and "health:" not in text

    def test_health_report_grades_the_default_slos(self, replay_artifacts):
        tmp, report = replay_artifacts
        from repro.obs.health import DEFAULT_SLOS, HEALTH_SCHEMA

        doc = json.loads((tmp / "BENCH_serve.health.json").read_text())
        assert doc["schema"] == HEALTH_SCHEMA
        assert len(doc["objectives"]) == len(DEFAULT_SLOS) >= 1
        assert doc["status"] in ("healthy", "degraded", "breach")
        assert report["results"]["health"]["status"] == doc["status"]
        evaluated = {o["spec"]["name"] for o in doc["objectives"]}
        assert evaluated == {s.name for s in DEFAULT_SLOS}

    def test_profile_artifacts_cover_both_phases(self, replay_artifacts):
        tmp, report = replay_artifacts
        speedscope = json.loads((tmp / "BENCH_serve.profile.json").read_text())
        assert speedscope["$schema"].startswith("https://www.speedscope.app")
        phases = {p["name"] for p in speedscope["profiles"]}
        assert phases == {"batcher-dispatch", "backend-execute"}
        folded = (tmp / "BENCH_serve.folded.txt").read_text().splitlines()
        assert folded and all(" " in ln for ln in folded)
        assert any(ln.startswith("backend-execute;") for ln in folded)
        assert report["results"]["profile"]["sampled"] > 0

    def test_mixed_classes_all_serve(self, replay_artifacts):
        tmp, _ = replay_artifacts
        from repro.obs.export import load_json

        registry = load_json((tmp / "BENCH_serve.metrics.json").read_text())
        sessions = {
            labels["session"]
            for labels, _ in registry.samples("repro_requests_total")
        }
        # seeded mix over 24 requests draws every class
        assert sessions == {"replay-spmm", "replay-sddmm", "replay-attn"}


def _report(**overrides) -> dict:
    base = {
        "schema": BENCH_SCHEMA,
        "bench": "serve-replay",
        "config": {},
        "results": {
            "requests": {"submitted": 10, "completed": 10, "rejected": 0},
            "latency_s": {
                "wall": {"count": 10, "mean": 1e-3, "p50": 1e-3,
                         "p95": 2e-3, "p99": 3e-3},
                "modelled": {"count": 10, "mean": 1e-6, "p50": 1e-6,
                             "p95": 2e-6, "p99": 3e-6},
                "queue_wait": {"count": 10, "mean": 1e-4, "p50": 1e-4,
                               "p95": 2e-4, "p99": 3e-4},
            },
            "throughput": {"offered_rps": 100.0, "completed_rps": 90.0,
                           "saturation_rps": 1000.0},
            "batching": {"batches": 5, "mean_batch_size": 2.0},
            "plan_cache": {"hits": 9, "misses": 1, "hit_rate": 0.9},
            "duration_s": 0.1,
        },
    }
    for path, value in overrides.items():
        d = base["results"]
        parts = path.split(".")
        for p in parts[:-1]:
            d = d[p]
        d[parts[-1]] = value
    return base


class TestCompare:
    def test_identical_reports_are_clean(self):
        assert compare_reports(_report(), _report()) == []

    def test_latency_regression_detected(self):
        worse = _report(**{"latency_s.wall.p99": 3e-3 * 2})
        lines = compare_reports(worse, _report())
        assert len(lines) == 1 and "latency_s.wall.p99" in lines[0]

    def test_throughput_regression_detected(self):
        worse = _report(**{"throughput.completed_rps": 30.0})
        lines = compare_reports(worse, _report())
        assert lines and "completed_rps" in lines[0] and "fell" in lines[0]

    def test_improvements_and_jitter_pass(self):
        better = _report(**{
            "latency_s.wall.p99": 1e-3,
            "throughput.completed_rps": 200.0,
        })
        assert compare_reports(better, _report()) == []
        jitter = _report(**{"latency_s.wall.p99": 3e-3 * 1.1})
        assert compare_reports(jitter, _report(), threshold=0.25) == []

    def test_schema_mismatch_raises(self):
        bad = _report()
        bad["schema"] = 99
        with pytest.raises(ConfigError):
            compare_reports(bad, _report())

    def test_missing_gate_metric_skipped_not_fatal(self):
        old = _report()
        del old["results"]["plan_cache"]
        assert compare_reports(_report(), old) == []


class TestCompareMain:
    def _write(self, tmp_path, name, report):
        p = tmp_path / name
        p.write_text(json.dumps(report))
        return str(p)

    def test_no_baseline_is_a_clean_pass(self, tmp_path, capsys):
        cur = self._write(tmp_path, "cur.json", _report())
        missing = str(tmp_path / "nope.json")
        assert compare_main([cur, missing]) == 0
        assert "nothing to compare" in capsys.readouterr().out

    def test_warn_only_by_default(self, tmp_path, capsys):
        worse = copy.deepcopy(_report())
        worse["results"]["latency_s"]["wall"]["p99"] *= 10
        cur = self._write(tmp_path, "cur.json", worse)
        base = self._write(tmp_path, "base.json", _report())
        assert compare_main([cur, base]) == 0
        out = capsys.readouterr().out
        assert "regression" in out and "warn-only" in out

    def test_strict_fails_on_regression(self, tmp_path):
        worse = copy.deepcopy(_report())
        worse["results"]["latency_s"]["wall"]["p99"] *= 10
        cur = self._write(tmp_path, "cur.json", worse)
        base = self._write(tmp_path, "base.json", _report())
        assert compare_main([cur, base, "--strict"]) == 1
        assert compare_main([cur, base, "--strict", "--threshold", "100"]) == 0

    def test_missing_current_errors(self, tmp_path):
        base = self._write(tmp_path, "base.json", _report())
        assert compare_main([str(tmp_path / "nope.json"), base]) == 2

    def test_routed_through_the_bench_cli(self, tmp_path, capsys):
        from repro.bench.cli import main as bench_main

        cur = self._write(tmp_path, "cur.json", _report())
        assert bench_main(["compare", cur, str(tmp_path / "nope.json")]) == 0
        assert "nothing to compare" in capsys.readouterr().out
