"""Smoke tests for the python -m repro.bench CLI."""

from repro.bench.cli import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for key in ("table1", "fig14", "table5"):
            assert key in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2

    def test_static_tables_run(self, capsys):
        assert main(["table1", "table2", "table3", "table4"]) == 0
        out = capsys.readouterr().out
        assert "Magicube" in out
        assert "m8n8k16" in out
        assert "L12-R4" in out

    def test_fig11_runs(self, capsys):
        assert main(["fig11", "--count", "1"]) == 0
        out = capsys.readouterr().out
        assert "L4-R4" in out

    def test_backends_sweep_runs(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        # magicube on every integer-tensor-core device, fp16 elsewhere
        assert "magicube-emulation" in out
        assert "vector-sparse" in out
        assert "H100" in out and "V100" in out
        assert "L4-R4" in out  # A100's int4 latency winner

    def test_autotune_cold_vs_warm_runs(self, capsys):
        """The warm engine hits every swept class on first contact."""
        assert main(["autotune", "--count", "1"]) == 0
        out = capsys.readouterr().out
        assert "cold" in out and "warm" in out
        assert "100.0%" in out  # warm first-contact hit rate
        assert "plans shipped" in out

    def test_retune_closes_the_loop(self, capsys):
        """The scheduler-converged engine hits every class of a shifted
        workload on first contact, with snapshot provenance, without a
        manual sweep (the experiment asserts its own convergence)."""
        assert main(["retune", "--count", "1"]) == 0
        out = capsys.readouterr().out
        assert "scheduler" in out and "manual-warm" in out
        assert "100.0%" in out  # scheduler-converged hit rate
        assert "provenance" in out and "snapshot" in out
        assert "loop closed" in out

    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig17",
            "serve",
            "backends",
            "autotune",
            "retune",
        }
