"""Smoke tests for the experiment definitions and reporting."""

import numpy as np
import pytest

from repro.bench.figures import (
    fig13_sddmm_precision,
    fig14_spmm_speedup,
    fig17_latency,
)
from repro.bench.report import render_series, render_table
from repro.bench.runner import (
    build_sddmm_workload,
    build_spmm_workload,
    geomean,
    time_cublas,
    time_magicube_spmm,
    tops_magicube_spmm,
)
from repro.dlmc.generator import MatrixSpec


class TestRunner:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([3.0]) == pytest.approx(3.0)
        assert np.isnan(geomean([]))

    def test_spmm_workload_consistency(self):
        spec = MatrixSpec("rn50", 64, 128, 0.7, 1)
        w = build_spmm_workload(spec, 8, 64)
        # both precisions share the vector-level pattern (individual
        # elements may differ: random draws can hit 0 inside a vector)
        keep8 = (w.dense8 != 0).reshape(8, 8, 128).any(axis=1)
        keep4 = (w.dense4 != 0).reshape(8, 8, 128).any(axis=1)
        np.testing.assert_array_equal(keep8, keep4)
        np.testing.assert_array_equal(w.srbcrs16.to_dense(), w.dense8)
        np.testing.assert_array_equal(w.srbcrs32.to_dense(), w.dense4)
        assert w.rhs8.shape == (128, 64)

    def test_sddmm_workload_alignment(self):
        spec = MatrixSpec("rn50", 64, 128, 0.7, 2)
        w = build_sddmm_workload(spec, 8, 64)
        assert w.a8.shape == (64, 64)
        assert w.b8.shape == (64, 128)
        assert w.mask.shape == (64, 128)

    def test_time_positive_all_libraries(self):
        spec = MatrixSpec("rn50", 64, 128, 0.8, 3)
        w = build_spmm_workload(spec, 8, 64)
        assert time_magicube_spmm(w, 8, 8) > 0
        assert time_cublas(w, "fp16") > 0
        assert tops_magicube_spmm(w, 8, 8) > 0


class TestReport:
    def test_render_table_aligns(self):
        out = render_table(["a", "bb"], [[1, 2.5], ["x", 3.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "2.50" in out and "3.00" in out

    def test_render_series_oom(self):
        out = render_series("x", [1, 2], {"lib": [1.0, None]})
        assert "OOM" in out


class TestFigureSmoke:
    """count=1 runs of the sweeps produce well-formed structures."""

    def test_fig13_structure(self):
        res = fig13_sddmm_precision(count=1, k=128)
        assert set(res) == {0.5, 0.7, 0.8, 0.9, 0.95, 0.98}
        cell = res[0.9]["L8-R8"]
        assert cell["basic"] > 0 and cell["prefetch"] > 0

    def test_fig14_structure(self):
        res = fig14_spmm_speedup(count=1, n_values=(128,), v_values=(8,))
        panel = res[(8, 128)]
        libs = set(next(iter(panel.values())))
        assert "Magicube (L8-R8)" in libs and "vectorSparse (fp16)" in libs

    def test_fig17_panels(self):
        res = fig17_latency()
        assert len(res) == 8  # 2 sparsities x 2 seqs x 2 head counts
        for panel in res.values():
            assert set(panel) == {2, 8}
