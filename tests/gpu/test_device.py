"""Tests for the device capability tables (paper Table II)."""

import pytest

from repro.errors import DeviceError
from repro.gpu.device import A100, H100, V100, get_device, list_devices


class TestTable2:
    """Pin the Table II numbers."""

    def test_a100_totals(self):
        assert A100.peak_tops("fp16", tensor_only=False) == 390.0
        assert A100.peak_tops("int8", tensor_only=False) == 702.0
        assert A100.peak_tops("int4", tensor_only=False) == 1248.0

    def test_a100_tensor_fractions(self):
        assert A100.peaks["fp16"].tensor_fraction == 0.80
        assert A100.peaks["int8"].tensor_fraction == 0.889
        assert A100.peaks["int4"].tensor_fraction == 1.0

    def test_a100_int4_all_tensor(self):
        assert A100.peak_tops("int4") == 1248.0

    def test_v100_has_no_integer_tensor_cores(self):
        assert not V100.supports("int8")
        assert not V100.supports("int4")
        with pytest.raises(DeviceError):
            V100.peak_tops("int8")

    def test_h100_no_int4(self):
        assert H100.supports("int8")
        assert not H100.supports("int4")

    def test_lower_precision_higher_peak_on_a100(self):
        assert (
            A100.peak_tops("fp16")
            < A100.peak_tops("int8")
            < A100.peak_tops("int4")
        )


class TestLookup:
    def test_get_device_case_insensitive(self):
        assert get_device("a100") is A100

    def test_unknown_device(self):
        with pytest.raises(DeviceError):
            get_device("B200")

    def test_list(self):
        assert list_devices() == ["A100", "H100", "MI250X", "V100"]

    def test_mi250x_discussion_numbers(self):
        """Discussion (a): AMD MI250X provides 383 TOP/s int8 via MFMA."""
        mi = get_device("MI250X")
        assert mi.peak_tops("int8", tensor_only=False) == 383.0
        assert not mi.supports("int4")


class TestDerived:
    def test_a100_sm_count(self):
        assert A100.num_sms == 108  # Sec. V

    def test_smem_bandwidth_positive(self):
        assert A100.smem_bandwidth_bytes_per_s > 1e12
