"""Tests for the cost model."""

import pytest

from repro.gpu.device import A100
from repro.gpu.memory import TrafficCounter
from repro.gpu.timing import CostModel, KernelStats
from repro.gpu.warp import LaunchGrid, ThreadBlock


def make_stats(
    ops_int8=0, dram=0, access=0, smem_cycles=0, prefetch=False, blocks=10000
) -> KernelStats:
    s = KernelStats(name="t")
    if ops_int8:
        s.mma_ops["int8"] = ops_int8
        s.useful_ops = ops_int8
    t = TrafficCounter()
    if access:
        t.read("x", access, unique_bytes=dram)
    s.traffic = t
    s.smem_transaction_cycles = smem_cycles
    s.prefetch = prefetch
    s.grid = LaunchGrid(blocks=blocks, block=ThreadBlock(warps=2))
    return s


class TestComponents:
    def test_compute_time_scales_with_ops(self):
        cm = CostModel(A100)
        t1 = cm.breakdown(make_stats(ops_int8=10**12)).compute
        t2 = cm.breakdown(make_stats(ops_int8=2 * 10**12)).compute
        assert t2 == pytest.approx(2 * t1)

    def test_compute_uses_precision_peak(self):
        cm = CostModel(A100, compute_efficiency=1.0)
        peak_ops = A100.peak_tops("int8") * 1e12  # one second at int8 peak
        s = make_stats(ops_int8=peak_ops)
        assert cm.breakdown(s).compute == pytest.approx(1.0)

    def test_dram_vs_l2(self):
        cm = CostModel(A100)
        # heavy re-read: access >> unique -> L2-bound
        b = cm.breakdown(make_stats(dram=10**6, access=10**9))
        assert b.l2 > b.dram
        assert b.bound() == "l2"

    def test_prefetch_overlaps(self):
        cm = CostModel(A100)
        base = dict(ops_int8=10**11, dram=10**8, access=10**8)
        t_serial = cm.time(make_stats(**base, prefetch=False))
        t_pipe = cm.time(make_stats(**base, prefetch=True))
        assert t_pipe < t_serial

    def test_smem_conflicts_add_time(self):
        cm = CostModel(A100)
        fast = cm.time(make_stats(ops_int8=10**10, smem_cycles=0))
        slow = cm.time(make_stats(ops_int8=10**10, smem_cycles=10**9))
        assert slow > fast

    def test_launch_overhead_floor(self):
        cm = CostModel(A100)
        assert cm.time(make_stats()) >= A100.launch_overhead_s

    def test_small_grid_penalized(self):
        cm = CostModel(A100)
        big = cm.time(make_stats(ops_int8=10**12, blocks=100000))
        small = cm.time(make_stats(ops_int8=10**12, blocks=8))
        assert small > big


class TestTops:
    def test_tops_metric(self):
        cm = CostModel(A100, compute_efficiency=1.0)
        s = make_stats(ops_int8=624e9, prefetch=True)  # 1 ms of pure compute
        tops = cm.tops(s)
        assert 0 < tops <= 624

    def test_zero_ops(self):
        cm = CostModel(A100)
        assert cm.tops(make_stats()) == 0.0


class TestStats:
    def test_add_mma(self):
        s = KernelStats()
        s.add_mma("int8", count=10, ops_per_mma=2048)
        s.add_mma("int8", count=5, ops_per_mma=2048)
        assert s.mma_ops["int8"] == 15 * 2048
        assert s.total_mma_ops == 15 * 2048
