"""Tests for the shared-memory bank-conflict model (paper Fig. 4)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.gpu.sharedmem import (
    PaddedRowBuffer,
    access_cycles,
    conflict_degree,
    spmm_rhs_load_pattern,
)


class TestConflictDegree:
    def test_sequential_is_free(self):
        assert conflict_degree(np.arange(32)) == 1

    def test_broadcast_is_free(self):
        assert conflict_degree(np.zeros(32, dtype=np.int64)) == 1

    def test_stride_32_is_worst_case(self):
        # all lanes hit bank 0 with distinct addresses
        assert conflict_degree(np.arange(32) * 32) == 32

    def test_stride_2_two_way(self):
        assert conflict_degree(np.arange(32) * 2) == 2

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            conflict_degree(np.array([], dtype=np.int64))


class TestPaddedRowBuffer:
    def test_addressing(self):
        buf = PaddedRowBuffer(row_words=16, pad_words=8)
        assert buf.address(np.array(0), np.array(0)) == 0
        assert buf.address(np.array(1), np.array(0)) == 16
        # padding kicks in after every 4 rows (64 int32 for BSn=64)
        assert buf.address(np.array(4), np.array(0)) == 72
        assert buf.footprint_words(8) == 8 * 16 + 2 * 8


class TestFig4Pattern:
    """The paper's claim: 8-word padding after 64 int8 makes the SpMM RHS
    register loads conflict-free; no padding conflicts."""

    def test_padded_is_conflict_free(self):
        for warp in (0, 1):
            pattern = spmm_rhs_load_pattern(bsk=16, bsn_bytes=64, pad_words=8, warp=warp)
            for access in pattern:
                assert conflict_degree(access) == 1

    def test_unpadded_conflicts(self):
        pattern = spmm_rhs_load_pattern(bsk=16, bsn_bytes=64, pad_words=0)
        degrees = [conflict_degree(a) for a in pattern]
        assert max(degrees) > 1

    def test_bsn128_with_padding(self):
        # BSn=128 (32 words/row): without padding every word-column hits
        # one bank; with 8-word padding the rows rotate across banks.
        bad = spmm_rhs_load_pattern(bsk=16, bsn_bytes=128, pad_words=0)
        good = spmm_rhs_load_pattern(bsk=16, bsn_bytes=128, pad_words=8)
        assert max(conflict_degree(a) for a in bad) == 4
        assert max(conflict_degree(a) for a in good) == 1

    def test_bsk_validation(self):
        with pytest.raises(ConfigError):
            spmm_rhs_load_pattern(bsk=10, bsn_bytes=64, pad_words=8)

    def test_access_cycles_sums_degrees(self):
        pattern = spmm_rhs_load_pattern(bsk=16, bsn_bytes=64, pad_words=8)
        assert access_cycles(pattern) == 4  # 4 conflict-free transactions
