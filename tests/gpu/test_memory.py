"""Tests for global-memory coalescing and traffic accounting."""

import numpy as np

from repro.gpu.memory import (
    SECTOR_BYTES,
    TrafficCounter,
    coalesced_sectors,
    transaction_efficiency,
)


class TestCoalescing:
    def test_contiguous_int8_row_is_two_sectors(self):
        # 64 consecutive bytes = 2 sectors — the 64B transaction of Sec. IV-B2
        addrs = np.arange(32) * 2  # 32 lanes x 2 bytes
        assert coalesced_sectors(addrs, access_bytes=2) == 2

    def test_perfect_int32_coalescing(self):
        addrs = np.arange(32) * 4
        assert coalesced_sectors(addrs, access_bytes=4) == 4

    def test_scattered_bytes(self):
        addrs = np.arange(32) * SECTOR_BYTES
        assert coalesced_sectors(addrs, access_bytes=1) == 32

    def test_efficiency(self):
        contiguous = np.arange(32) * 4
        assert transaction_efficiency(contiguous, 4) == 1.0
        scattered = np.arange(32) * 128
        assert transaction_efficiency(scattered, 4) == 4 / 32

    def test_straddling_access(self):
        # one lane reading 4 bytes across a sector boundary touches 2 sectors
        assert coalesced_sectors(np.array([30]), access_bytes=4) == 2


class TestTrafficCounter:
    def test_basic_accounting(self):
        t = TrafficCounter()
        t.read("rhs", 1000, unique_bytes=100)
        t.read("lhs", 50)
        t.write("out", 200)
        assert t.read_bytes == 1050
        assert t.unique_read_bytes == 150
        assert t.write_bytes == 200
        assert t.total_dram_bytes == 350
        assert t.total_access_bytes == 1250

    def test_unique_capped_at_total(self):
        t = TrafficCounter()
        t.read("x", 10, unique_bytes=100)
        assert t.unique_read_bytes == 10

    def test_merge(self):
        a, b = TrafficCounter(), TrafficCounter()
        a.read("x", 10)
        b.read("x", 20, unique_bytes=5)
        b.write("y", 7)
        a.merge(b)
        assert a.read_bytes == 30
        assert a.unique_read_bytes == 15
        assert a.write_bytes == 7
        assert a.by_stream["x"][0] == 30

    def test_streams_tracked(self):
        t = TrafficCounter()
        t.read("lhs_values", 64)
        t.write("output", 32)
        assert set(t.by_stream) == {"lhs_values", "output"}
