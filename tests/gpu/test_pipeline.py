"""Tests for the Algorithm-1 prefetch pipeline schedule."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.pipeline import PipelineSchedule, overlap_time


class TestSchedule:
    def test_serial_time(self):
        s = PipelineSchedule(steps=10, load=2.0, compute=3.0)
        assert s.serial_time() == 50.0

    def test_pipelined_compute_bound(self):
        s = PipelineSchedule(steps=10, load=2.0, compute=3.0)
        # cold load + 9 x max + final compute
        assert s.pipelined_time() == pytest.approx(2.0 + 9 * 3.0 + 3.0)

    def test_pipelined_load_bound(self):
        s = PipelineSchedule(steps=10, load=5.0, compute=1.0)
        assert s.pipelined_time() == pytest.approx(5.0 + 9 * 5.0 + 1.0)

    def test_speedup_bounded_by_two(self):
        s = PipelineSchedule(steps=100, load=3.0, compute=3.0)
        assert 1.0 < s.speedup() <= 2.0

    def test_single_step_no_benefit(self):
        s = PipelineSchedule(steps=1, load=2.0, compute=3.0)
        assert s.pipelined_time() == s.serial_time()

    def test_zero_steps(self):
        assert PipelineSchedule(steps=0, load=1.0, compute=1.0).pipelined_time() == 0.0


class TestOverlapTime:
    def test_dispatch(self):
        assert overlap_time(2.0, 3.0, 10, prefetch=False) == 50.0
        assert overlap_time(2.0, 3.0, 10, prefetch=True) < 50.0


@settings(max_examples=50)
@given(
    st.integers(min_value=1, max_value=1000),
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
)
def test_pipeline_invariants(steps, load, compute):
    s = PipelineSchedule(steps=steps, load=load, compute=compute)
    pipelined, serial = s.pipelined_time(), s.serial_time()
    # pipelining never hurts and never beats the critical path
    assert pipelined <= serial + 1e-9
    assert pipelined >= max(steps * load, steps * compute) - 1e-9
