"""Tests for the mma.sync register fragment layouts (paper Fig. 1)."""

import numpy as np
import pytest

from repro.errors import LayoutError, ShapeError
from repro.gpu.fragments import INT4_M8N8K32, INT8_M8N8K16, layout_for
from repro.lowp.pack import unpack_int4, unpack_int8


class TestFigure1Layout:
    """Pin the exact thread-to-element mapping shown in Fig. 1."""

    def test_thread0_a_elements(self):
        row, cols = INT8_M8N8K16.a_elements(0)
        assert row == 0
        np.testing.assert_array_equal(cols, [0, 1, 2, 3])

    def test_thread1_a_elements(self):
        # T1 holds a04, a05, a06, a07 per Fig. 1
        row, cols = INT8_M8N8K16.a_elements(1)
        assert row == 0
        np.testing.assert_array_equal(cols, [4, 5, 6, 7])

    def test_thread4_a_row1(self):
        # T4 holds a10..a13
        row, cols = INT8_M8N8K16.a_elements(4)
        assert row == 1
        np.testing.assert_array_equal(cols, [0, 1, 2, 3])

    def test_thread31_a(self):
        # T31 holds a7c..a7f
        row, cols = INT8_M8N8K16.a_elements(31)
        assert row == 7
        np.testing.assert_array_equal(cols, [12, 13, 14, 15])

    def test_thread0_b_elements(self):
        # T0 provides b00, b10, b20, b30 (column 0, rows 0..3)
        rows, col = INT8_M8N8K16.b_elements(0)
        assert col == 0
        np.testing.assert_array_equal(rows, [0, 1, 2, 3])

    def test_thread5_b_elements(self):
        # T5 holds b41, b51, b61, b71 (column 1, rows 4..7)
        rows, col = INT8_M8N8K16.b_elements(5)
        assert col == 1
        np.testing.assert_array_equal(rows, [4, 5, 6, 7])

    def test_thread0_c_elements(self):
        # T0 holds c00, c01
        row, cols = INT8_M8N8K16.c_elements(0)
        assert row == 0
        np.testing.assert_array_equal(cols, [0, 1])

    def test_thread31_c_elements(self):
        # T31 holds c76, c77
        row, cols = INT8_M8N8K16.c_elements(31)
        assert row == 7
        np.testing.assert_array_equal(cols, [6, 7])

    def test_int4_lane_count(self):
        assert INT4_M8N8K32.lanes == 8
        row, cols = INT4_M8N8K32.a_elements(1)
        assert row == 0
        np.testing.assert_array_equal(cols, np.arange(8, 16))

    def test_thread_out_of_warp(self):
        with pytest.raises(LayoutError):
            INT8_M8N8K16.a_elements(32)


class TestDistributeCollect:
    def test_a_round_trip_int8(self):
        rng = np.random.default_rng(0)
        a = rng.integers(-128, 128, size=(8, 16))
        regs = INT8_M8N8K16.distribute_a(a)
        assert regs.shape == (32,)
        np.testing.assert_array_equal(INT8_M8N8K16.collect_a(regs), a)

    def test_b_round_trip_int8(self):
        rng = np.random.default_rng(1)
        b = rng.integers(-128, 128, size=(16, 8))
        regs = INT8_M8N8K16.distribute_b(b)
        assert regs.shape == (32,)
        np.testing.assert_array_equal(INT8_M8N8K16.collect_b(regs), b)

    def test_a_round_trip_int4(self):
        rng = np.random.default_rng(2)
        a = rng.integers(-8, 8, size=(8, 32))
        np.testing.assert_array_equal(
            INT4_M8N8K32.collect_a(INT4_M8N8K32.distribute_a(a)), a
        )

    def test_b_round_trip_int4(self):
        rng = np.random.default_rng(3)
        b = rng.integers(-8, 8, size=(32, 8))
        np.testing.assert_array_equal(
            INT4_M8N8K32.collect_b(INT4_M8N8K32.distribute_b(b)), b
        )

    def test_c_round_trip(self):
        c = np.arange(64, dtype=np.int32).reshape(8, 8)
        regs = INT8_M8N8K16.distribute_c(c)
        assert regs.shape == (32, 2)
        np.testing.assert_array_equal(INT8_M8N8K16.collect_c(regs), c)

    def test_register_contents_match_index_map(self):
        """distribute_a's packed word for thread t holds a_elements(t)."""
        a = np.arange(8 * 16).reshape(8, 16) % 127
        regs = INT8_M8N8K16.distribute_a(a)
        for t in (0, 1, 5, 17, 31):
            row, cols = INT8_M8N8K16.a_elements(t)
            np.testing.assert_array_equal(
                unpack_int8(regs[t : t + 1]), a[row, cols]
            )

    def test_b_register_contents_column_major(self):
        b = (np.arange(16 * 8).reshape(16, 8) % 127).astype(np.int64)
        regs = INT8_M8N8K16.distribute_b(b)
        for t in (0, 5, 30):
            rows, col = INT8_M8N8K16.b_elements(t)
            np.testing.assert_array_equal(unpack_int8(regs[t : t + 1]), b[rows, col])

    def test_int4_register_contents(self):
        a = (np.arange(8 * 32).reshape(8, 32) % 15) - 7
        regs = INT4_M8N8K32.distribute_a(a)
        row, cols = INT4_M8N8K32.a_elements(9)
        np.testing.assert_array_equal(unpack_int4(regs[9:10]), a[row, cols])

    def test_wrong_tile_shape(self):
        with pytest.raises(ShapeError):
            INT8_M8N8K16.distribute_a(np.zeros((8, 8), dtype=np.int64))

    def test_wrong_fragment_size(self):
        with pytest.raises(LayoutError):
            INT8_M8N8K16.collect_a(np.zeros(16, dtype=np.uint32))


class TestLayoutFor:
    def test_known_widths(self):
        assert layout_for(8) is INT8_M8N8K16
        assert layout_for(4) is INT4_M8N8K32

    def test_unsupported_width(self):
        with pytest.raises(LayoutError):
            layout_for(16)
