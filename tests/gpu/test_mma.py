"""Tests for the bit-accurate MMA primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PrecisionError, ShapeError
from repro.gpu.fragments import INT4_M8N8K32, INT8_M8N8K16
from repro.gpu.mma import (
    MmaShape,
    mma_shape_for,
    mma_sync,
    mma_tile,
    ref_imma,
    supported_shapes,
)


class TestShapeRegistry:
    """Pin Table III."""

    def test_int8_shapes(self):
        names = [s.name for s in supported_shapes(8)]
        assert names == ["m8n8k16", "m16n8k16", "m16n8k32"]

    def test_int4_shapes(self):
        names = [s.name for s in supported_shapes(4)]
        assert names == ["m8n8k32", "m16n8k32", "m16n8k64"]

    def test_smallest_is_default(self):
        assert mma_shape_for(8) == MmaShape(8, 8, 16, 8)
        assert mma_shape_for(4) == MmaShape(8, 8, 32, 4)

    def test_ops_count(self):
        assert MmaShape(8, 8, 16, 8).ops == 2 * 8 * 8 * 16

    def test_unsupported_precision(self):
        with pytest.raises(PrecisionError):
            supported_shapes(16)


class TestRefImma:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        a = rng.integers(-128, 128, size=(8, 16))
        b = rng.integers(-128, 128, size=(16, 8))
        np.testing.assert_array_equal(ref_imma(a, b, 8), a @ b)

    def test_signed_unsigned_mix(self):
        a = np.full((2, 4), -3, dtype=np.int64)
        b = np.full((4, 2), 200, dtype=np.int64)  # unsigned int8 values
        out = ref_imma(a, b, 8, a_signed=True, b_signed=False)
        np.testing.assert_array_equal(out, a @ b)

    def test_range_violation(self):
        a = np.full((2, 2), 200, dtype=np.int64)  # not signed int8
        b = np.ones((2, 2), dtype=np.int64)
        with pytest.raises(PrecisionError):
            ref_imma(a, b, 8, a_signed=True)

    def test_float_rejected(self):
        with pytest.raises(PrecisionError):
            ref_imma(np.ones((2, 2)), np.ones((2, 2), dtype=np.int64), 8)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            ref_imma(
                np.ones((2, 3), dtype=np.int64), np.ones((2, 3), dtype=np.int64), 8
            )


class TestMmaSync:
    def test_int8_full_mma(self):
        rng = np.random.default_rng(1)
        a = rng.integers(-128, 128, size=(8, 16))
        b = rng.integers(-128, 128, size=(16, 8))
        c = rng.integers(-1000, 1000, size=(8, 8)).astype(np.int32)
        lay = INT8_M8N8K16
        d_frags = mma_sync(
            lay.distribute_a(a), lay.distribute_b(b), lay.distribute_c(c), lay
        )
        np.testing.assert_array_equal(lay.collect_c(d_frags), a @ b + c)

    def test_int4_full_mma(self):
        rng = np.random.default_rng(2)
        a = rng.integers(-8, 8, size=(8, 32))
        b = rng.integers(-8, 8, size=(32, 8))
        c = np.zeros((8, 8), dtype=np.int32)
        lay = INT4_M8N8K32
        d_frags = mma_sync(
            lay.distribute_a(a), lay.distribute_b(b), lay.distribute_c(c), lay
        )
        np.testing.assert_array_equal(lay.collect_c(d_frags), a @ b)

    def test_wrong_marshalling_gives_wrong_result(self):
        """Feeding B row-major (i.e. B.T distributed) computes A @ B.T."""
        rng = np.random.default_rng(3)
        a = rng.integers(-8, 8, size=(8, 16))
        b = rng.integers(-8, 8, size=(16, 8))
        lay = INT8_M8N8K16
        # distribute_b(B.T.T)=ok; simulate the bug: hand B.T's columns
        wrong = lay.distribute_b(np.ascontiguousarray(b.T.reshape(16, 8)))
        d = mma_sync(
            lay.distribute_a(a), wrong, lay.distribute_c(np.zeros((8, 8), np.int32)), lay
        )
        result = lay.collect_c(d)
        assert not np.array_equal(result, a @ b)

    def test_mixed_signedness(self):
        rng = np.random.default_rng(4)
        a = rng.integers(-8, 8, size=(8, 16))  # signed digits
        b = rng.integers(0, 16, size=(16, 8))  # unsigned nibbles... as int8 values
        lay = INT8_M8N8K16
        d = mma_sync(
            lay.distribute_a(a),
            lay.distribute_b(b),
            lay.distribute_c(np.zeros((8, 8), np.int32)),
            lay,
            a_signed=True,
            b_signed=False,
        )
        np.testing.assert_array_equal(lay.collect_c(d), a @ b)


class TestMmaTile:
    def test_matches_mma_sync(self):
        rng = np.random.default_rng(5)
        a = rng.integers(-128, 128, size=(8, 16))
        b = rng.integers(-128, 128, size=(16, 8))
        c = rng.integers(-500, 500, size=(8, 8)).astype(np.int32)
        lay = INT8_M8N8K16
        via_sync = lay.collect_c(
            mma_sync(lay.distribute_a(a), lay.distribute_b(b), lay.distribute_c(c), lay)
        )
        via_tile = mma_tile(a, b, 8, accum=c)
        np.testing.assert_array_equal(via_sync, via_tile)

    def test_tile_shape_checked(self):
        with pytest.raises(ShapeError):
            mma_tile(np.zeros((8, 8), np.int64), np.zeros((8, 8), np.int64), 8)

    def test_accumulation_chains(self):
        """k-loop accumulation: two mmas == one 32-wide matmul."""
        rng = np.random.default_rng(6)
        a = rng.integers(-10, 10, size=(8, 32))
        b = rng.integers(-10, 10, size=(32, 8))
        c = mma_tile(a[:, :16], b[:16], 8)
        c = mma_tile(a[:, 16:], b[16:], 8, accum=c)
        np.testing.assert_array_equal(c, a @ b)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_mma_property_random_tiles(seed):
    rng = np.random.default_rng(seed)
    a = rng.integers(-8, 8, size=(8, 32))
    b = rng.integers(-8, 8, size=(32, 8))
    np.testing.assert_array_equal(mma_tile(a, b, 4), a @ b)
