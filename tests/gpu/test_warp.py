"""Tests for warp/thread-block geometry helpers."""

import pytest

from repro.errors import ConfigError
from repro.gpu.warp import LaunchGrid, ThreadBlock, ceil_div, lane_id, round_up, warp_id


class TestMath:
    def test_ceil_div(self):
        assert ceil_div(10, 4) == 3
        assert ceil_div(8, 4) == 2
        assert ceil_div(0, 4) == 0

    def test_ceil_div_bad_divisor(self):
        with pytest.raises(ConfigError):
            ceil_div(4, 0)

    def test_round_up(self):
        assert round_up(17, 16) == 32
        assert round_up(16, 16) == 16


class TestThreadBlock:
    def test_threads(self):
        assert ThreadBlock(warps=2).threads == 64

    def test_bounds(self):
        with pytest.raises(ConfigError):
            ThreadBlock(warps=0)
        with pytest.raises(ConfigError):
            ThreadBlock(warps=33)


class TestLaunchGrid:
    def test_total_warps(self):
        g = LaunchGrid(blocks=10, block=ThreadBlock(warps=2))
        assert g.total_warps == 20

    def test_full_grid_utilization(self):
        g = LaunchGrid(blocks=10000, block=ThreadBlock(warps=2))
        assert g.utilization(108) > 0.95

    def test_tiny_grid_underutilized(self):
        g = LaunchGrid(blocks=4, block=ThreadBlock(warps=2))
        assert g.utilization(108) < 0.1

    def test_waves(self):
        g = LaunchGrid(blocks=216, block=ThreadBlock(warps=2))
        assert g.occupancy_waves(108, blocks_per_sm=2) == 1.0


class TestIds:
    def test_lane_and_warp(self):
        assert lane_id(0) == 0
        assert lane_id(33) == 1
        assert warp_id(33) == 1
        assert warp_id(31) == 0
