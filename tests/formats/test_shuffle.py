"""Tests for the Fig. 7 block-wise column-index shuffle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.formats import (
    SHUFFLE_ORDER,
    inverse_order,
    shuffle_block_indices,
    unshuffle_block_indices,
)


class TestOrder:
    def test_paper_order(self):
        # Fig. 7: idx0, idx2, idx4, idx6, idx1, idx3, idx5, idx7
        np.testing.assert_array_equal(SHUFFLE_ORDER, [0, 2, 4, 6, 1, 3, 5, 7])

    def test_inverse(self):
        inv = inverse_order()
        np.testing.assert_array_equal(SHUFFLE_ORDER[inv], np.arange(8))

    def test_shuffle_example(self):
        idx = np.arange(8)
        np.testing.assert_array_equal(
            shuffle_block_indices(idx), [0, 2, 4, 6, 1, 3, 5, 7]
        )

    def test_blockwise(self):
        idx = np.arange(16)
        out = shuffle_block_indices(idx)
        np.testing.assert_array_equal(out[:8], SHUFFLE_ORDER)
        np.testing.assert_array_equal(out[8:], SHUFFLE_ORDER + 8)


class TestRoundTrip:
    def test_unshuffle_inverts(self):
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 1000, size=64)
        np.testing.assert_array_equal(
            unshuffle_block_indices(shuffle_block_indices(idx)), idx
        )

    def test_bad_length(self):
        with pytest.raises(FormatError):
            shuffle_block_indices(np.arange(12))
        with pytest.raises(FormatError):
            unshuffle_block_indices(np.arange(12))

    def test_unsupported_block(self):
        with pytest.raises(FormatError):
            shuffle_block_indices(np.arange(4), block=4)


@settings(max_examples=40)
@given(st.lists(st.integers(min_value=-1, max_value=10**6), min_size=8, max_size=64))
def test_shuffle_property(vals):
    if len(vals) % 8 != 0:
        vals = vals[: 8 * (len(vals) // 8)]
    idx = np.array(vals)
    s = shuffle_block_indices(idx)
    # a permutation within each block of 8
    for b in range(idx.size // 8):
        np.testing.assert_array_equal(
            np.sort(s[8 * b : 8 * b + 8]), np.sort(idx[8 * b : 8 * b + 8])
        )
    np.testing.assert_array_equal(unshuffle_block_indices(s), idx)
