"""Tests for SR-BCRS — the paper's format (Fig. 2c)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.formats import SRBCRSMatrix, dense_to_srbcrs
from repro.formats.srbcrs import PAD_INDEX
from tests.conftest import make_structured_sparse


class TestRoundTrip:
    @pytest.mark.parametrize("v", [2, 4, 8])
    @pytest.mark.parametrize("stride", [16, 32])
    def test_random(self, rng, v, stride):
        d = make_structured_sparse(rng, 32, 64, v, 0.7)
        m = dense_to_srbcrs(d, v, stride)
        np.testing.assert_array_equal(m.to_dense(), d)

    def test_empty(self):
        m = dense_to_srbcrs(np.zeros((8, 8), dtype=np.int32), 4, 16)
        assert m.num_vectors == 0
        assert m.num_padded_vectors == 0


class TestStridedStorage:
    """Pin the storage layout: stride groups stored row-major."""

    def test_group_is_row_major_lhs_tile(self, rng):
        d = make_structured_sparse(rng, 8, 64, 8, 0.5)
        m = dense_to_srbcrs(d, 8, 16)
        cols, tile = m.group(0, 0)
        assert tile.shape == (8, 16)
        # column j of the tile is dense vector cols[j]
        for j in range(16):
            if cols[j] == PAD_INDEX:
                np.testing.assert_array_equal(tile[:, j], 0)
            else:
                np.testing.assert_array_equal(tile[:, j], d[0:8, cols[j]])

    def test_flat_values_are_contiguous_rows(self, rng):
        """A warp streaming values front-to-back reads tile rows in order
        — the property that satisfies the MMA LHS layout for free."""
        d = make_structured_sparse(rng, 8, 64, 8, 0.5)
        m = dense_to_srbcrs(d, 8, 16)
        cols, tile = m.group(0, 0)
        start = int(m.row_starts[0]) * 8
        flat = m.values[start : start + 8 * 16]
        np.testing.assert_array_equal(flat.reshape(8, 16), tile)

    def test_padding_to_stride(self, rng):
        # 5 vectors with stride 16 -> 16 padded slots, 11 sentinels
        d = np.zeros((4, 32), dtype=np.int32)
        d[0, [1, 3, 7, 11, 13]] = 1
        m = dense_to_srbcrs(d, 4, 16)
        assert m.num_vectors == 5
        assert m.num_padded_vectors == 16
        assert (m.col_indices == PAD_INDEX).sum() == 11
        assert m.padding_ratio == pytest.approx(16 / 5)

    def test_two_m_row_pointers(self, rng):
        d = make_structured_sparse(rng, 32, 64, 8, 0.7)
        m = dense_to_srbcrs(d, 8, 16)
        strips = 32 // 8
        assert m.row_starts.shape == (strips,)
        assert m.row_ends.shape == (strips,)
        # starts stride-aligned; ends mark valid extents
        assert np.all(m.row_starts % 16 == 0)
        np.testing.assert_array_equal(
            m.row_ends - m.row_starts, m.vectors_per_strip()
        )

    def test_multi_group_strip(self, rng):
        d = make_structured_sparse(rng, 8, 256, 8, 0.5)  # ~128 vectors
        m = dense_to_srbcrs(d, 8, 16)
        assert m.strip_num_groups(0) >= 2
        seen_cols = []
        for cols, tile in m.iter_groups(0):
            valid = cols != PAD_INDEX
            seen_cols.extend(cols[valid].tolist())
        np.testing.assert_array_equal(np.sort(seen_cols), np.nonzero(d[0])[0])


class TestInvariants:
    def test_vector_length_bound(self):
        with pytest.raises(FormatError):
            dense_to_srbcrs(np.zeros((16, 16), dtype=np.int32), 16, 16)

    def test_group_out_of_range(self, rng):
        d = make_structured_sparse(rng, 8, 32, 8, 0.5)
        m = dense_to_srbcrs(d, 8, 16)
        with pytest.raises(FormatError):
            m.group(0, m.strip_num_groups(0))

    def test_storage_includes_padding(self, rng):
        d = np.zeros((4, 32), dtype=np.int32)
        d[0, 0] = 1
        m = dense_to_srbcrs(d, 4, 16)
        # 16 padded vectors x 4 elements x 1 byte + indices + pointers
        assert m.storage_bytes(8) == 16 * 4 + 16 * 4 + 2 * 4

    def test_unaligned_row_start_rejected(self):
        with pytest.raises(FormatError):
            SRBCRSMatrix(
                shape=(4, 16),
                vector_length=4,
                stride=16,
                row_starts=np.array([3]),
                row_ends=np.array([4]),
                col_indices=np.full(16, PAD_INDEX, dtype=np.int32),
                values=np.zeros(64),
            )


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=0, max_value=10**6),
    st.sampled_from([2, 4, 8]),
    st.sampled_from([16, 32]),
    st.sampled_from([0.5, 0.9]),
)
def test_srbcrs_round_trip_property(seed, v, stride, sparsity):
    rng = np.random.default_rng(seed)
    d = make_structured_sparse(rng, 4 * v, 48, v, sparsity)
    m = dense_to_srbcrs(d, v, stride)
    np.testing.assert_array_equal(m.to_dense(), d)
    assert m.nnz == int((d.reshape(4, v, 48).any(axis=1)).sum()) * v
