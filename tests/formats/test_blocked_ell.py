"""Tests for Blocked-ELL (cuSPARSE block SpMM format)."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import BlockedEllMatrix, dense_to_blocked_ell
from tests.conftest import make_structured_sparse


class TestRoundTrip:
    def test_random(self, rng):
        d = make_structured_sparse(rng, 32, 64, 8, 0.8)
        m = dense_to_blocked_ell(d, 8)
        np.testing.assert_array_equal(m.to_dense(), d)

    def test_uniform_width(self, rng):
        d = make_structured_sparse(rng, 64, 64, 8, 0.7)
        m = dense_to_blocked_ell(d, 8)
        assert m.block_cols.shape[1] == m.ell_width

    def test_empty(self):
        m = dense_to_blocked_ell(np.zeros((16, 16), dtype=np.int32), 8)
        assert m.nnz == 0
        assert m.ell_width == 1  # at least one (padded) slot


class TestPadding:
    def test_imbalanced_rows_pad(self):
        d = np.zeros((16, 64), dtype=np.int32)
        d[0:8, 0:40] = 1   # block-row 0: 5 blocks
        d[8:16, 0:8] = 1   # block-row 1: 1 block
        m = dense_to_blocked_ell(d, 8)
        assert m.ell_width == 5
        assert m.padded_nnz == 2 * 5 * 64
        assert m.padding_ratio == pytest.approx((2 * 5) / 6)

    def test_padding_blocks_zero(self):
        d = np.zeros((16, 16), dtype=np.int32)
        d[0, 0] = 3
        m = dense_to_blocked_ell(d, 8)
        assert np.all(m.blocks[1] == 0)

    def test_nnz_counts_kept_blocks_fully(self):
        d = np.zeros((8, 8), dtype=np.int32)
        d[0, 0] = 1  # one 8x8 block kept because of a single scalar
        m = dense_to_blocked_ell(d, 8)
        assert m.nnz == 64  # the whole block is stored


class TestInvariants:
    def test_untileable_shape(self):
        with pytest.raises(FormatError):
            dense_to_blocked_ell(np.zeros((10, 16), dtype=np.int32), 8)

    def test_block_col_range_checked(self):
        with pytest.raises(FormatError):
            BlockedEllMatrix(
                shape=(8, 8),
                block_size=8,
                block_cols=np.array([[7]], dtype=np.int32),
                blocks=np.zeros((1, 1, 8, 8)),
            )

    def test_storage_bytes(self):
        d = np.zeros((8, 16), dtype=np.int32)
        d[0, 0] = 1
        m = dense_to_blocked_ell(d, 8)
        assert m.storage_bytes(8) == 1 * 4 + 64
