"""Tests for scalar CSR."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import CSRMatrix, dense_to_csr
from tests.conftest import make_structured_sparse


class TestRoundTrip:
    def test_simple(self):
        d = np.array([[1, 0, 2], [0, 0, 0], [3, 4, 0]])
        m = CSRMatrix.from_dense(d)
        assert m.nnz == 4
        np.testing.assert_array_equal(m.to_dense(), d)

    def test_random(self, rng):
        d = make_structured_sparse(rng, 16, 32, 1, 0.8)
        np.testing.assert_array_equal(dense_to_csr(d).to_dense(), d)

    def test_empty_matrix(self):
        d = np.zeros((4, 4), dtype=np.int32)
        m = CSRMatrix.from_dense(d)
        assert m.nnz == 0
        np.testing.assert_array_equal(m.to_dense(), d)

    def test_full_matrix(self):
        d = np.ones((3, 3), dtype=np.int32)
        m = CSRMatrix.from_dense(d)
        assert m.sparsity == 0.0


class TestInvariants:
    def test_bad_row_ptrs_length(self):
        with pytest.raises(FormatError):
            CSRMatrix(
                shape=(2, 2),
                row_ptrs=np.array([0, 1]),
                col_indices=np.array([0]),
                values=np.array([1]),
            )

    def test_decreasing_ptrs(self):
        with pytest.raises(FormatError):
            CSRMatrix(
                shape=(2, 2),
                row_ptrs=np.array([0, 2, 1]),
                col_indices=np.array([0]),
                values=np.array([1]),
            )

    def test_col_out_of_range(self):
        with pytest.raises(FormatError):
            CSRMatrix(
                shape=(1, 2),
                row_ptrs=np.array([0, 1]),
                col_indices=np.array([5]),
                values=np.array([1]),
            )

    def test_row_nnz(self, rng):
        d = make_structured_sparse(rng, 8, 16, 1, 0.5)
        m = dense_to_csr(d)
        np.testing.assert_array_equal(m.row_nnz(), (d != 0).sum(axis=1))

    def test_sparsity_metric(self):
        d = np.zeros((10, 10), dtype=np.int32)
        d[0, :5] = 1
        assert dense_to_csr(d).sparsity == pytest.approx(0.95)
