"""Tests for BCRS with 1-D blocks (vectorSparse encoding)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.formats import BCRSMatrix, dense_to_bcrs
from tests.conftest import make_structured_sparse


class TestRoundTrip:
    @pytest.mark.parametrize("v", [2, 4, 8])
    def test_random(self, rng, v):
        d = make_structured_sparse(rng, 32, 64, v, 0.7)
        m = dense_to_bcrs(d, v)
        assert m.vector_length == v
        np.testing.assert_array_equal(m.to_dense(), d)

    def test_figure2_example_structure(self):
        """A strip keeps a column iff any of its V rows is nonzero."""
        d = np.zeros((4, 6), dtype=np.int32)
        d[0, 1] = 5          # vector (strip 0, col 1): [5, 0]
        d[1, 1] = 0
        d[2, 3] = 7          # vector (strip 1, col 3)
        d[3, 3] = 8
        m = dense_to_bcrs(d, 2)
        assert m.num_vectors == 2
        np.testing.assert_array_equal(m.col_indices, [1, 3])
        np.testing.assert_array_equal(m.values[0], [5, 0])
        np.testing.assert_array_equal(m.values[1], [7, 8])

    def test_empty_strip(self):
        d = np.zeros((8, 8), dtype=np.int32)
        d[0, 0] = 1  # only strip 0 nonempty
        m = dense_to_bcrs(d, 4)
        assert m.vectors_per_strip().tolist() == [1, 0]
        np.testing.assert_array_equal(m.to_dense(), d)


class TestInvariants:
    def test_rows_not_multiple_of_v(self):
        with pytest.raises(FormatError):
            dense_to_bcrs(np.zeros((6, 4), dtype=np.int32), 4)

    def test_values_shape_checked(self):
        with pytest.raises(FormatError):
            BCRSMatrix(
                shape=(4, 4),
                vector_length=2,
                row_ptrs=np.array([0, 1, 1]),
                col_indices=np.array([0]),
                values=np.zeros((1, 3)),
            )

    def test_nnz_counts_scalars(self, rng):
        d = make_structured_sparse(rng, 16, 16, 4, 0.5)
        m = dense_to_bcrs(d, 4)
        assert m.nnz == m.num_vectors * 4

    def test_strip_vectors_view(self, rng):
        d = make_structured_sparse(rng, 16, 32, 8, 0.6)
        m = dense_to_bcrs(d, 8)
        cols, vecs = m.strip_vectors(0)
        assert vecs.shape == (cols.size, 8)
        # vector j of strip 0 is dense[0:8, cols[j]]
        for j, c in enumerate(cols):
            np.testing.assert_array_equal(vecs[j], d[0:8, c])


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=0, max_value=10**6),
    st.sampled_from([2, 4, 8]),
    st.sampled_from([0.3, 0.7, 0.95]),
)
def test_bcrs_round_trip_property(seed, v, sparsity):
    rng = np.random.default_rng(seed)
    d = make_structured_sparse(rng, 16, 24, v, sparsity)
    np.testing.assert_array_equal(dense_to_bcrs(d, v).to_dense(), d)
