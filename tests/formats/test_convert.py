"""Tests for format conversions."""

import numpy as np
import pytest

from repro.formats import (
    bcrs_to_srbcrs,
    dense_to_bcrs,
    dense_to_srbcrs,
    srbcrs_to_bcrs,
)
from repro.formats.convert import blocked_ell_equivalent
from repro.formats.validate import validate_bcrs, validate_srbcrs
from tests.conftest import make_structured_sparse


class TestBcrsSrbcrs:
    @pytest.mark.parametrize("v", [2, 4, 8])
    def test_bcrs_to_srbcrs_matches_direct(self, rng, v):
        d = make_structured_sparse(rng, 32, 96, v, 0.7)
        via_bcrs = bcrs_to_srbcrs(dense_to_bcrs(d, v), stride=16)
        direct = dense_to_srbcrs(d, v, 16)
        np.testing.assert_array_equal(via_bcrs.values, direct.values)
        np.testing.assert_array_equal(via_bcrs.col_indices, direct.col_indices)
        np.testing.assert_array_equal(via_bcrs.row_starts, direct.row_starts)
        validate_srbcrs(via_bcrs)

    @pytest.mark.parametrize("v", [2, 4, 8])
    def test_round_trip(self, rng, v):
        d = make_structured_sparse(rng, 32, 96, v, 0.8)
        bcrs = dense_to_bcrs(d, v)
        back = srbcrs_to_bcrs(bcrs_to_srbcrs(bcrs, stride=16))
        np.testing.assert_array_equal(back.to_dense(), d)
        validate_bcrs(back)

    def test_stride32_int4_path(self, rng):
        d = make_structured_sparse(rng, 16, 128, 8, 0.6, bits=4)
        sr = bcrs_to_srbcrs(dense_to_bcrs(d, 8), stride=32)
        assert sr.stride == 32
        np.testing.assert_array_equal(sr.to_dense(), d)


class TestBlockedEllEquivalent:
    def test_preserves_values(self, rng):
        d = make_structured_sparse(rng, 32, 64, 8, 0.8)
        m = blocked_ell_equivalent(d, vector_length=8, block_size=8)
        np.testing.assert_array_equal(m.to_dense(), d)

    def test_coarser_blocks_store_more(self, rng):
        """bs x bs blocks capture whole tiles: cuSPARSE's granularity tax."""
        d = make_structured_sparse(rng, 64, 64, 8, 0.9)
        ell = blocked_ell_equivalent(d, vector_length=8, block_size=8)
        kept_scalars = ell.nnz
        true_nnz_vectors = int(d.reshape(8, 8, 64).any(axis=1).sum()) * 8
        assert kept_scalars >= true_nnz_vectors
