"""Fastpath backends on the runtime registry: priority, protocol, jit gate."""

import importlib.util

import numpy as np
import pytest

from repro.dlmc.generator import MatrixSpec, generate_matrix
from repro.core.matrix import SparseMatrix
from repro.errors import ConfigError
from repro.kernels.spmm import SpMMConfig
from repro.runtime import (
    DEFAULT_BACKEND,
    Problem,
    REGISTRY,
    get_backend,
    resolve_backend,
)

HAVE_NUMBA = importlib.util.find_spec("numba") is not None


@pytest.fixture(scope="module")
def spmm_operands():
    spec = MatrixSpec("transformer", 64, 64, sparsity=0.8, seed=4)
    dense = generate_matrix(spec, vector_length=4, bits=8)
    lhs = SparseMatrix.from_dense(dense, vector_length=4, precision="L8-R8")
    rng = np.random.default_rng(4)
    return lhs, rng.integers(-128, 128, size=(64, 32), dtype=np.int64)


class TestRegistration:
    def test_fastpath_vectorized_is_registered(self):
        be = get_backend("fastpath-vectorized")
        assert be.name == "fastpath-vectorized"
        assert be.priority == 15

    def test_default_backend_unchanged(self):
        # the fastpath rides *above* the emulation priority: opting in
        # is explicit (pinned backend / plan), never a silent swap
        assert DEFAULT_BACKEND == "magicube-emulation"
        assert resolve_backend(None, op="spmm").name == "magicube-emulation"

    def test_priority_order(self):
        names = [b.name for b in REGISTRY.backends()]
        assert names.index("magicube-emulation") < names.index(
            "fastpath-vectorized"
        )

    def test_jit_registered_only_with_numba(self):
        names = {b.name for b in REGISTRY.backends()}
        assert ("fastpath-jit" in names) == HAVE_NUMBA

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba present: gate untestable")
    def test_jit_backend_raises_without_numba(self):
        from repro.fastpath.jit import FastpathJitBackend

        with pytest.raises(ConfigError):
            FastpathJitBackend()


class TestProtocolSurface:
    def test_capabilities_match_emulation(self):
        emu = get_backend("magicube-emulation").capabilities()
        fast = get_backend("fastpath-vectorized").capabilities()
        assert emu == fast

    def test_plan_candidates_match_emulation(self):
        problem = Problem(
            op="spmm", rows=128, cols=256, inner=64, vector_length=4,
            sparsity=0.9,
        )
        emu = get_backend("magicube-emulation").plan_candidates(problem, "A100")
        fast = get_backend("fastpath-vectorized").plan_candidates(
            problem, "A100"
        )
        assert [(c.precision, c.config, c.time_s) for c in emu] == [
            (c.precision, c.config, c.time_s) for c in fast
        ]

    def test_execute_matches_emulation(self, spmm_operands):
        lhs, rhs = spmm_operands
        cfg = SpMMConfig(l_bits=8, r_bits=8)
        emu = get_backend("magicube-emulation").execute(
            "spmm", "A100", config=cfg, lhs=lhs, rhs=rhs
        )
        fast = get_backend("fastpath-vectorized").execute(
            "spmm", "A100", config=cfg, lhs=lhs, rhs=rhs
        )
        np.testing.assert_array_equal(emu.output, fast.output)
        # identical accounting -> identical modelled time
        assert emu.time_s == fast.time_s

    def test_cost_model_memoized_per_device(self):
        be = get_backend("fastpath-vectorized")
        assert be.cost("A100") is be.cost("A100")
        assert be.cost("A100") is not be.cost("H100")


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
class TestJit:
    def test_jit_execute_matches_emulation(self, spmm_operands):
        lhs, rhs = spmm_operands
        cfg = SpMMConfig(l_bits=8, r_bits=8)
        emu = get_backend("magicube-emulation").execute(
            "spmm", "A100", config=cfg, lhs=lhs, rhs=rhs
        )
        jit = get_backend("fastpath-jit").execute(
            "spmm", "A100", config=cfg, lhs=lhs, rhs=rhs
        )
        np.testing.assert_array_equal(emu.output, jit.output)

    def test_jit_priority_below_vectorized(self):
        assert (
            get_backend("fastpath-jit").priority
            > get_backend("fastpath-vectorized").priority
        )
