"""Fastpath plans survive the whole planning lifecycle.

A plan that names ``fastpath-vectorized`` must behave exactly like a
Magicube plan everywhere plans travel: planner search, kernel-config
construction, plan-cache save/load, autotune artifacts, warm-started
engines. Anything less and the fast path silently falls out of the
serving loop.
"""

import numpy as np
import pytest

from repro.serve.cache import PlanCache
from repro.serve.planner import ExecutionPlanner, Objective


@pytest.fixture
def planner() -> ExecutionPlanner:
    return ExecutionPlanner(device="A100")


class TestPlanning:
    def test_fastpath_plan_carries_magicube_configs(self, planner):
        plan = planner.plan_spmm(
            256, 512, 64, 8, 0.9, Objective.fixed(8, 8),
            backend="fastpath-vectorized",
        )
        assert plan.backend == "fastpath-vectorized"
        assert plan.is_magicube  # fastpath runs the Magicube kernels
        cfg = plan.spmm_config()
        assert (cfg.l_bits, cfg.r_bits) == (8, 8)
        assert plan.stride == 16

    def test_fastpath_and_emulation_pick_identical_plans(self, planner):
        emu = planner.plan_spmm(
            256, 512, 64, 8, 0.9, Objective.latency(),
            backend="magicube-emulation",
        )
        fast = planner.plan_spmm(
            256, 512, 64, 8, 0.9, Objective.latency(),
            backend="fastpath-vectorized",
        )
        # same kernels, same accounting -> same precision and knobs
        assert (emu.precision, emu.config) == (fast.precision, fast.config)
        assert emu.key != fast.key  # but distinct cache entries

    def test_sddmm_plan(self, planner):
        plan = planner.plan_sddmm(
            256, 256, 64, 8, 0.9, Objective.fixed(8, 8),
            backend="fastpath-vectorized",
        )
        assert plan.backend == "fastpath-vectorized"
        assert plan.sddmm_config().l_bits == 8


class TestCacheRoundTrip:
    def test_save_load_preserves_fastpath_plans(self, planner, tmp_path):
        plan = planner.plan_spmm(
            256, 512, 64, 8, 0.9, Objective.fixed(8, 8),
            backend="fastpath-vectorized",
        )
        path = tmp_path / "plans.json"
        planner.cache.save(path)
        fresh = PlanCache()
        assert fresh.load(path) == len(planner.cache)
        reloaded = fresh.get(plan.key)
        assert reloaded is not None
        assert reloaded.backend == "fastpath-vectorized"
        assert reloaded.spmm_config() == plan.spmm_config()


class TestWarmStartedEngine:
    def test_artifact_warm_starts_fastpath_serving(self, tmp_path):
        from repro import api
        from repro.autotune import (
            ArtifactManifest,
            SweepConfig,
            run_sweep,
            write_artifact,
        )
        from repro.dlmc.generator import MatrixSpec, generate_matrix

        from repro.core.matrix import SparseMatrix

        spec = MatrixSpec("transformer", 128, 128, sparsity=0.9, seed=1)
        dense = generate_matrix(spec, vector_length=8, bits=8)
        # the sweep must cover the *realized* sparsity the engine will
        # classify requests under (PlanKey buckets at 3 decimals)
        weights = SparseMatrix.from_dense(dense, vector_length=8)
        config = SweepConfig(
            ops=("spmm",),
            shapes=((128, 128, 64),),
            vector_lengths=(8,),
            sparsities=(weights.sparsity,),
            devices=("A100",),
            backends=("fastpath-vectorized",),
            min_bits=((8, 8),),
        )
        report = run_sweep(config, repeats=1)
        artifact = tmp_path / "plans.json"
        write_artifact(artifact, report.cache, ArtifactManifest.for_report(report))

        rng = np.random.default_rng(0)
        with api.open_engine(device="A100", warm_start=artifact) as client:
            session = client.prepare(
                api.SpmmRequest(
                    lhs=weights, session="ffn", backend="fastpath-vectorized"
                )
            )
            client.planner.cache.reset_counters()
            plan = session.plan_for(64, 8)
            assert plan.backend == "fastpath-vectorized"
            stats = client.planner.cache.stats()
            assert stats["hits"] == 1 and stats["misses"] == 0
            resp = session.run(rng.integers(-128, 128, size=(128, 64)))
            assert resp.backend == "fastpath-vectorized"
