"""The kernel wall-clock bench harness and its CLI gate."""

import json

import pytest

from repro.bench.kernels import (
    DEFAULT_GRID,
    KERNELS_SCHEMA,
    REDUCED_GRID,
    Cell,
    kernels_main,
    render_kernel_report,
    run_kernel_bench,
)

#: one tiny cell per op: correctness of the harness, not the speedup
TINY_GRID = (
    Cell("spmm", "L8-R8", 64, 64, 32, 4, 0.8),
    Cell("sddmm", "L8-R8", 64, 64, 32, 4, 0.8),
    Cell("softmax", "q8", 64, 64, 0, 4, 0.8, gated=False),
)


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_kernels.json"
    return run_kernel_bench(cells=TINY_GRID, repeats=1, floor=0.0, out=out), out


class TestHarness:
    def test_schema_and_artifact(self, report):
        rep, out = report
        assert rep["schema"] == KERNELS_SCHEMA
        assert json.loads(out.read_text()) == rep

    def test_every_cell_bit_exact(self, report):
        rep, _ = report
        assert rep["all_bit_exact"]
        assert all(c["bit_exact"] for c in rep["cells"])

    def test_floor_zero_passes(self, report):
        rep, _ = report
        assert rep["passed"]
        assert rep["gated_median_speedup"] > 0

    def test_softmax_cells_are_not_gated(self, report):
        rep, _ = report
        gated_ops = {c["op"] for c in rep["cells"] if c["gated"]}
        assert gated_ops == {"spmm", "sddmm"}
        assert "softmax" in rep["median_speedup"]

    def test_unreachable_floor_fails(self, tmp_path):
        rep = run_kernel_bench(
            cells=TINY_GRID[:1], repeats=1, floor=1e9,
            out=tmp_path / "r.json",
        )
        assert not rep["passed"]

    def test_render_names_the_verdict(self, report):
        rep, _ = report
        text = render_kernel_report(rep)
        assert "gated (spmm+sddmm) median" in text
        assert "PASS" in text

    def test_grids_are_well_formed(self):
        for grid in (DEFAULT_GRID, REDUCED_GRID):
            assert any(c.op == "spmm" and c.gated for c in grid)
            assert any(c.op == "sddmm" and c.gated for c in grid)
            for cell in grid:
                assert cell.op in ("spmm", "sddmm", "softmax")
                assert 0.0 < cell.sparsity < 1.0


class TestCli:
    def test_wall_flag_required(self, capsys):
        assert kernels_main([]) == 2
        assert "--wall" in capsys.readouterr().err

    def test_routed_from_bench_cli(self, capsys):
        from repro.bench.cli import main

        # reaches the kernels parser (which rejects the missing --wall)
        assert main(["kernels"]) == 2
        assert "--wall" in capsys.readouterr().err
