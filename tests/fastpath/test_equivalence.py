"""Fastpath kernels are bit-exact against the emulation kernels.

The whole contract of :mod:`repro.fastpath` is "identical bits,
different wall-clock": every cell of this grid compares the vectorized
kernels against the strip-loop emulation across Table-IV pairs,
topologies, tile knobs and epilogue settings — exact array equality,
never allclose.
"""

import numpy as np
import pytest

from repro.core.matrix import SparseMatrix
from repro.dlmc.generator import MatrixSpec, generate_matrix
from repro.fastpath import (
    FastpathSDDMM,
    FastpathSpMM,
    sparse_softmax_quantized_fast,
)
from repro.formats.convert import dense_to_bcrs
from repro.formats.srbcrs import SRBCRSMatrix
from repro.kernels.sddmm import MagicubeSDDMM, SDDMMConfig
from repro.kernels.softmax import sparse_softmax_quantized
from repro.kernels.spmm import MagicubeSpMM, SpMMConfig
from repro.lowp.quantize import int_range

SPMM_PAIRS = [(16, 16), (16, 8), (8, 8), (16, 4), (12, 4), (8, 4), (4, 4)]
SDDMM_PAIRS = [(16, 16), (8, 8), (4, 4)]
TOPOLOGIES = [  # (rows, cols, V, sparsity)
    (64, 64, 2, 0.7),
    (128, 128, 4, 0.9),
    (96, 96, 8, 0.5),
]


def _spmm_operands(l_bits, r_bits, rows, cols, v, sparsity, n=48, seed=3):
    spec = MatrixSpec("transformer", rows, cols, sparsity=sparsity, seed=seed)
    dense = generate_matrix(spec, vector_length=v, bits=l_bits)
    stride = MagicubeSpMM(SpMMConfig(l_bits=l_bits, r_bits=r_bits)).required_stride
    lhs = SRBCRSMatrix.from_dense(dense, v, stride)
    lo, hi = int_range(r_bits, True)
    rng = np.random.default_rng(seed)
    rhs = rng.integers(lo, hi + 1, size=(cols, n), dtype=np.int64)
    return lhs, rhs


class TestSpmmEquivalence:
    @pytest.mark.parametrize("l_bits,r_bits", SPMM_PAIRS)
    @pytest.mark.parametrize("rows,cols,v,sparsity", TOPOLOGIES)
    def test_bit_exact_across_grid(self, l_bits, r_bits, rows, cols, v, sparsity):
        lhs, rhs = _spmm_operands(l_bits, r_bits, rows, cols, v, sparsity)
        cfg = SpMMConfig(l_bits=l_bits, r_bits=r_bits)
        slow = MagicubeSpMM(cfg)(lhs, rhs, scale=0.02)
        fast = FastpathSpMM(cfg)(lhs, rhs, scale=0.02)
        np.testing.assert_array_equal(slow.output, fast.output)
        np.testing.assert_array_equal(slow.dequantized, fast.dequantized)

    @pytest.mark.parametrize("bsn", [32, 64, 128])
    @pytest.mark.parametrize("fuse_dequant", [True, False])
    def test_knobs_do_not_change_bits(self, bsn, fuse_dequant):
        lhs, rhs = _spmm_operands(8, 8, 64, 64, 4, 0.8)
        cfg = SpMMConfig(l_bits=8, r_bits=8, bsn=bsn, fuse_dequant=fuse_dequant)
        slow = MagicubeSpMM(cfg)(lhs, rhs, scale=0.01)
        fast = FastpathSpMM(cfg)(lhs, rhs, scale=0.01)
        np.testing.assert_array_equal(slow.output, fast.output)
        if fuse_dequant:
            np.testing.assert_array_equal(slow.dequantized, fast.dequantized)
        else:
            assert slow.dequantized is None and fast.dequantized is None

    def test_no_scale_skips_dequant(self):
        lhs, rhs = _spmm_operands(8, 4, 64, 64, 2, 0.6)
        fast = FastpathSpMM(l_bits=8, r_bits=4)(lhs, rhs)
        assert fast.dequantized is None

    def test_accounting_identical(self):
        lhs, rhs = _spmm_operands(8, 8, 64, 64, 4, 0.8)
        cfg = SpMMConfig(l_bits=8, r_bits=8)
        slow = MagicubeSpMM(cfg)(lhs, rhs).stats
        fast = FastpathSpMM(cfg)(lhs, rhs).stats
        assert slow.name == fast.name
        assert slow.traffic.total_dram_bytes == fast.traffic.total_dram_bytes
        assert slow.smem_transaction_cycles == fast.smem_transaction_cycles
        assert slow.epilogue_cycles == fast.epilogue_cycles

    def test_stats_are_not_aliased_between_calls(self):
        # the fastpath memoizes accounting per request class; results
        # must still be independently mutable
        lhs, rhs = _spmm_operands(8, 8, 64, 64, 4, 0.8)
        kern = FastpathSpMM(l_bits=8, r_bits=8)
        s1, s2 = kern(lhs, rhs).stats, kern(lhs, rhs).stats
        assert s1 is not s2
        s1.notes["poked"] = True
        assert "poked" not in s2.notes

    def test_strict_routes_through_emulation_algebra(self):
        lhs, rhs = _spmm_operands(8, 4, 64, 64, 2, 0.6)
        cfg = SpMMConfig(l_bits=8, r_bits=4)
        strict = FastpathSpMM(cfg)(lhs, rhs, strict=True)
        fast = FastpathSpMM(cfg)(lhs, rhs)
        np.testing.assert_array_equal(strict.output, fast.output)

    def test_float64_fallback_is_exact(self):
        # L16-R16 exceeds the float32 mantissa bound -> float64 path
        lhs, rhs = _spmm_operands(16, 16, 64, 64, 4, 0.5)
        kern = FastpathSpMM(l_bits=16, r_bits=16)
        assert kern._accum_dtype(lhs.shape[1]) == np.float64
        slow = MagicubeSpMM(l_bits=16, r_bits=16)(lhs, rhs)
        np.testing.assert_array_equal(slow.output, kern(lhs, rhs).output)


class TestSddmmEquivalence:
    @pytest.mark.parametrize("l_bits,r_bits", SDDMM_PAIRS)
    @pytest.mark.parametrize("rows,cols,v,sparsity", TOPOLOGIES)
    def test_bit_exact_across_grid(self, l_bits, r_bits, rows, cols, v, sparsity):
        spec = MatrixSpec("transformer", rows, cols, sparsity=sparsity, seed=5)
        mask = dense_to_bcrs(generate_matrix(spec, vector_length=v, bits=8), v)
        rng = np.random.default_rng(5)
        k = 64
        lo, hi = int_range(l_bits, True)
        a = rng.integers(lo, hi + 1, size=(rows, k), dtype=np.int64)
        lo, hi = int_range(r_bits, True)
        b = rng.integers(lo, hi + 1, size=(k, cols), dtype=np.int64)
        cfg = SDDMMConfig(l_bits=l_bits, r_bits=r_bits)
        slow = MagicubeSDDMM(cfg)(a, b, mask)
        fast = FastpathSDDMM(cfg)(a, b, mask)
        np.testing.assert_array_equal(
            np.asarray(slow.output.values), np.asarray(fast.output.values)
        )

    @pytest.mark.parametrize("output_format", ["bcrs", "srbcrs"])
    def test_output_format_preserved(self, output_format):
        spec = MatrixSpec("transformer", 64, 64, sparsity=0.7, seed=2)
        mask = dense_to_bcrs(generate_matrix(spec, vector_length=4, bits=8), 4)
        rng = np.random.default_rng(2)
        a = rng.integers(-128, 128, size=(64, 32), dtype=np.int64)
        b = rng.integers(-128, 128, size=(32, 64), dtype=np.int64)
        cfg = SDDMMConfig(l_bits=8, r_bits=8, output_format=output_format)
        slow = MagicubeSDDMM(cfg)(a, b, mask)
        fast = FastpathSDDMM(cfg)(a, b, mask)
        assert type(slow.output) is type(fast.output)
        np.testing.assert_array_equal(
            np.asarray(slow.output.values), np.asarray(fast.output.values)
        )

    def test_strict_routes_through_emulation_algebra(self):
        spec = MatrixSpec("transformer", 64, 64, sparsity=0.7, seed=2)
        mask = dense_to_bcrs(generate_matrix(spec, vector_length=4, bits=8), 4)
        rng = np.random.default_rng(2)
        a = rng.integers(-8, 8, size=(64, 32), dtype=np.int64)
        b = rng.integers(-8, 8, size=(32, 64), dtype=np.int64)
        cfg = SDDMMConfig(l_bits=4, r_bits=4)
        strict = FastpathSDDMM(cfg)(a, b, mask, strict=True)
        fast = FastpathSDDMM(cfg)(a, b, mask)
        np.testing.assert_array_equal(
            np.asarray(strict.output.values), np.asarray(fast.output.values)
        )


class TestSoftmaxEquivalence:
    @pytest.mark.parametrize("out_bits", [8, 16])
    @pytest.mark.parametrize("rows,cols,v,sparsity", TOPOLOGIES)
    def test_bit_exact_across_grid(self, out_bits, rows, cols, v, sparsity):
        spec = MatrixSpec("transformer", rows, cols, sparsity=sparsity, seed=9)
        topo = dense_to_bcrs(generate_matrix(spec, vector_length=v, bits=8), v)
        rng = np.random.default_rng(9)
        scores = type(topo)(
            shape=topo.shape,
            vector_length=v,
            row_ptrs=topo.row_ptrs,
            col_indices=topo.col_indices,
            values=rng.integers(-127, 128, size=(topo.num_vectors, v)).astype(
                np.int64
            ),
        )
        slow = sparse_softmax_quantized(scores, scale=0.05, out_bits=out_bits)
        fast = sparse_softmax_quantized_fast(scores, scale=0.05, out_bits=out_bits)
        np.testing.assert_array_equal(slow.output.values, fast.output.values)
        assert slow.params == fast.params


class TestBackendCrossCheck:
    def test_fastpath_matches_strict_backend(self):
        # three implementations, one answer: digit-decomposition
        # algebra, strip-loop emulation, vectorized fastpath
        from repro.runtime import get_backend

        spec = MatrixSpec("transformer", 64, 64, sparsity=0.7, seed=11)
        dense = generate_matrix(spec, vector_length=4, bits=8)
        lhs = SparseMatrix.from_dense(dense, vector_length=4, precision="L8-R4")
        rng = np.random.default_rng(11)
        rhs = rng.integers(-8, 8, size=(64, 32), dtype=np.int64)
        cfg = SpMMConfig(l_bits=8, r_bits=4)
        outs = [
            get_backend(name).execute(
                "spmm", "A100", config=cfg, lhs=lhs, rhs=rhs
            ).output
            for name in ("magicube-strict", "magicube-emulation",
                         "fastpath-vectorized")
        ]
        np.testing.assert_array_equal(outs[0], outs[1])
        np.testing.assert_array_equal(outs[1], outs[2])
