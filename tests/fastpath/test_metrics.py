"""The measured kernel wall-time histogram, recorded on the execute path."""

import numpy as np

from repro import api
from repro.dlmc.generator import MatrixSpec, generate_matrix
from repro.obs.metrics import MetricsRegistry
from repro.obs.names import KERNEL_WALL, STANDARD_METRICS


def test_kernel_wall_is_a_standard_metric():
    by_name = {name: kind for name, kind, _, _ in STANDARD_METRICS}
    assert by_name[KERNEL_WALL] == "histogram"


def test_engine_records_kernel_wall_per_backend():
    spec = MatrixSpec("transformer", 128, 128, sparsity=0.9, seed=1)
    weights = generate_matrix(spec, vector_length=8, bits=8)
    rng = np.random.default_rng(0)
    metrics = MetricsRegistry()
    with api.open_engine(device="A100", metrics=metrics) as client:
        session = client.prepare(api.SpmmRequest(lhs=weights, session="ffn"))
        session.run(rng.integers(-128, 128, size=(128, 64)))
        session.run(rng.integers(-128, 128, size=(128, 64)))
    hist = metrics.histogram(
        KERNEL_WALL, labels={"op": "spmm", "backend": "magicube-emulation"}
    )
    assert hist.count >= 1  # batching may coalesce the two requests
    assert hist.sum > 0


def test_resolution_execute_observes_into_passed_registry():
    from repro.api.requests import SpmmRequest
    from repro.api.resolution import execute, normalize, resolve

    spec = MatrixSpec("transformer", 64, 64, sparsity=0.8, seed=2)
    weights = generate_matrix(spec, vector_length=4, bits=8)
    rng = np.random.default_rng(2)
    req = SpmmRequest(
        lhs=weights,
        rhs=rng.integers(-128, 128, size=(64, 32)),
        precision="L8-R8",
        backend="fastpath-vectorized",
    )
    metrics = MetricsRegistry()
    req = normalize(req)
    res = resolve(req, device="A100")
    execute(res, req, metrics=metrics)
    hist = metrics.histogram(
        KERNEL_WALL, labels={"op": "spmm", "backend": "fastpath-vectorized"}
    )
    assert hist.count == 1
