"""SLO health: spec validation, burn-rate grading, windows, publishing."""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro import api
from repro.errors import ConfigError
from repro.obs import names
from repro.obs.health import (
    DEFAULT_SLOS,
    HEALTH_SCHEMA,
    HealthEvaluator,
    HealthReport,
    SloSpec,
    evaluate_registry,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.names import declare_standard


class TestSloSpec:
    def test_defaults_and_source_metric(self):
        spec = SloSpec(name="p95", kind="latency", objective=0.25)
        assert spec.quantile == 0.95
        assert spec.source_metric == names.REQUEST_WALL
        assert SloSpec(
            name="r", kind="rejection_rate", objective=0.05
        ).source_metric == names.REJECTIONS

    def test_metric_override(self):
        spec = SloSpec(
            name="kernel", kind="latency", objective=1e-3,
            metric=names.KERNEL_WALL,
        )
        assert spec.source_metric == names.KERNEL_WALL

    def test_dict_labels_normalize_to_sorted_tuple(self):
        spec = SloSpec(
            name="s", kind="latency", objective=0.1,
            labels={"session": "ffn", "backend": "numpy"},
        )
        assert spec.labels == (("backend", "numpy"), ("session", "ffn"))

    @pytest.mark.parametrize("kwargs", [
        {"kind": "nonsense"},
        {"objective": 0.0},
        {"objective": -1.0},
        {"kind": "rejection_rate", "objective": 1.0},
        {"kind": "cache_hit_rate", "objective": 1.5},
        {"kind": "latency", "quantile": 0.0},
        {"kind": "latency", "quantile": 1.0},
        {"degraded_burn": 0.0},
        {"degraded_burn": 3.0, "breach_burn": 2.0},
    ])
    def test_bad_specs_raise(self, kwargs):
        base = {"name": "x", "kind": "latency", "objective": 0.5}
        with pytest.raises(ConfigError):
            SloSpec(**{**base, **kwargs})


def _registry_with_wall(values, buckets=None) -> MetricsRegistry:
    r = declare_standard(MetricsRegistry())
    h = r.histogram(names.REQUEST_WALL)
    for v in values:
        h.observe(v)
    return r


class TestLatencyGrading:
    def _spec(self, objective, quantile=0.90):
        return SloSpec(
            name="lat", kind="latency", objective=objective, quantile=quantile
        )

    def test_all_fast_requests_are_healthy(self):
        r = _registry_with_wall([0.001] * 20)
        report = evaluate_registry(r, (self._spec(0.25),))
        (result,) = report.results
        assert result.status == "healthy" and result.burn == 0.0

    def test_all_slow_requests_breach(self):
        r = _registry_with_wall([1.0] * 20)
        report = evaluate_registry(r, (self._spec(0.25),))
        (result,) = report.results
        assert result.status == "breach"
        # every request over the threshold burns 1/budget = 10x
        assert result.burn == pytest.approx(10.0, rel=0.05)

    def test_burn_is_fraction_over_budget(self):
        # 2 of 20 over the threshold against a 10% budget: burn ~1.0.
        # Threshold sits at a bucket bound so interpolation is exact.
        r = _registry_with_wall([0.001] * 18 + [0.9] * 2)
        (result,) = evaluate_registry(
            r, (self._spec(0.262144, quantile=0.90),)
        ).results
        assert result.burn == pytest.approx(1.0, rel=0.1)
        assert result.observed == pytest.approx(0.1, rel=0.1)

    def test_empty_registry_is_healthy(self):
        report = evaluate_registry(declare_standard(MetricsRegistry()))
        assert report.status == "healthy"
        assert all("yet" in r.detail for r in report.results)


class TestOtherKinds:
    def test_rejection_rate(self):
        r = declare_standard(MetricsRegistry())
        r.counter(names.REQUESTS, {"session": "s"}).inc(90)
        r.counter(names.REJECTIONS, {"session": "s"}).inc(10)
        spec = SloSpec(name="rej", kind="rejection_rate", objective=0.05)
        (result,) = evaluate_registry(r, (spec,)).results
        assert result.burn == pytest.approx(2.0)  # 10% shed vs 5% objective
        assert result.status == "breach"

    def test_queue_depth_reads_the_gauge_max(self):
        r = declare_standard(MetricsRegistry())
        r.gauge(names.QUEUE_DEPTH, {"session": "a"}).set(8)
        r.gauge(names.QUEUE_DEPTH, {"session": "b"}).set(96)
        spec = SloSpec(name="q", kind="queue_depth", objective=64.0)
        (result,) = evaluate_registry(r, (spec,)).results
        assert result.burn == pytest.approx(96 / 64)
        assert result.status == "degraded"

    def test_cache_hit_rate_floor(self):
        r = declare_standard(MetricsRegistry())
        r.counter(names.CACHE_HITS).inc(75)
        r.counter(names.CACHE_MISSES).inc(25)
        spec = SloSpec(name="c", kind="cache_hit_rate", objective=0.50)
        (result,) = evaluate_registry(r, (spec,)).results
        # 25% misses against a 50% miss budget: half the budget
        assert result.burn == pytest.approx(0.5)
        assert result.status == "healthy"

    def test_labels_filter_samples(self):
        r = declare_standard(MetricsRegistry())
        r.counter(names.REQUESTS, {"session": "a"}).inc(10)
        r.counter(names.REQUESTS, {"session": "b"}).inc(10)
        r.counter(names.REJECTIONS, {"session": "b"}).inc(10)
        only_a = SloSpec(
            name="a", kind="rejection_rate", objective=0.05,
            labels={"session": "a"},
        )
        (result,) = evaluate_registry(r, (only_a,)).results
        assert result.status == "healthy" and result.burn == 0.0


class TestHealthReport:
    def _report(self, statuses):
        results = [
            evaluate_registry(
                declare_standard(MetricsRegistry()),
                (SloSpec(name=f"s{i}", kind="latency", objective=1.0),),
            ).results[0]
            for i, _ in enumerate(statuses)
        ]
        for result, status in zip(results, statuses):
            result.status = status
        return HealthReport(results=results)

    def test_worst_objective_decides_and_exits(self):
        assert self._report(["healthy", "healthy"]).exit_code() == 0
        assert self._report(["healthy", "degraded"]).exit_code() == 1
        assert self._report(["breach", "degraded"]).exit_code() == 2

    def test_breaches_and_burning_select(self):
        report = self._report(["healthy", "degraded", "breach"])
        assert [r.spec.name for r in report.breaches] == ["s2"]
        assert [r.spec.name for r in report.burning()] == ["s1", "s2"]
        assert report.burning("rejection_rate") == []

    def test_save_writes_schema_versioned_json(self, tmp_path):
        path = self._report(["healthy"]).save(tmp_path / "h.json")
        doc = json.loads(path.read_text())
        assert doc["schema"] == HEALTH_SCHEMA
        assert doc["status"] == "healthy" and len(doc["objectives"]) == 1


class TestPublish:
    def test_publish_writes_slo_metrics_back(self):
        r = _registry_with_wall([1.0] * 10)
        spec = SloSpec(name="lat", kind="latency", objective=0.25)
        evaluate_registry(r, (spec,), publish=True)
        labels = {"objective": "lat"}
        assert r.counter(names.SLO_EVALUATIONS, labels).value == 1
        assert r.counter(names.SLO_BREACHES, labels).value == 1
        assert r.gauge(names.SLO_BURN_RATE, labels).value > 2.0

    def test_healthy_evaluation_increments_no_breaches(self):
        r = _registry_with_wall([0.001] * 10)
        evaluate_registry(r, DEFAULT_SLOS, publish=True)
        total = sum(
            c.value for _, c in r.samples(names.SLO_BREACHES)
        )
        assert total == 0

    def test_publish_needs_a_live_registry(self):
        doc = declare_standard(MetricsRegistry()).to_dict()
        with pytest.raises(ConfigError):
            evaluate_registry(doc, DEFAULT_SLOS, publish=True)

    def test_snapshot_dict_evaluates_like_the_live_registry(self):
        r = _registry_with_wall([0.001] * 10)
        live = evaluate_registry(r, DEFAULT_SLOS)
        loaded = evaluate_registry(r.to_dict(), DEFAULT_SLOS)
        assert [x.burn for x in live.results] == [x.burn for x in loaded.results]


class TestHealthEvaluator:
    def _observe(self, registry, values):
        h = registry.histogram(names.REQUEST_WALL)
        for v in values:
            h.observe(v)

    def test_windows_grade_recent_traffic_not_lifetime(self):
        registry = declare_standard(MetricsRegistry())
        spec = SloSpec(name="lat", kind="latency", objective=0.25)
        evaluator = HealthEvaluator((spec,), window_s=60.0, publish=False)

        # an early incident: every request slow
        self._observe(registry, [1.0] * 50)
        report = evaluator.evaluate(registry, now=0.0)
        assert report.status == "breach"

        # recovery: later windows see only the fast delta
        for step in range(1, 6):
            self._observe(registry, [0.001] * 50)
            report = evaluator.evaluate(registry, now=step * 60.0)
        assert report.status == "healthy"
        # while the lifetime totals still grade degraded-or-worse
        assert evaluate_registry(registry, (spec,)).status != "healthy"

    def test_report_carries_the_window(self):
        evaluator = HealthEvaluator(window_s=30.0, publish=False)
        report = evaluator.evaluate(
            declare_standard(MetricsRegistry()), now=0.0
        )
        assert report.window_s == 30.0

    def test_gauges_grade_current_not_delta(self):
        registry = declare_standard(MetricsRegistry())
        spec = SloSpec(name="q", kind="queue_depth", objective=10.0)
        evaluator = HealthEvaluator((spec,), window_s=60.0, publish=False)
        registry.gauge(names.QUEUE_DEPTH, {"session": "s"}).set(5)
        evaluator.evaluate(registry, now=0.0)
        registry.gauge(names.QUEUE_DEPTH, {"session": "s"}).set(50)
        report = evaluator.evaluate(registry, now=1.0)
        assert report.status == "breach"  # the gauge reads now, not a delta

    def test_bad_window_raises(self):
        with pytest.raises(ConfigError):
            HealthEvaluator(window_s=0.0)


@pytest.fixture
def lhs():
    return repro.SparseMatrix.from_dense(
        np.eye(64, dtype=np.int8), vector_length=8
    )


class TestClientHealth:
    def test_client_health_grades_and_publishes(self, lhs):
        registry = MetricsRegistry()
        with repro.open_engine(metrics=registry) as client:
            for _ in range(4):
                client.run(api.SpmmRequest(
                    lhs=lhs, rhs=np.ones((64, 8), dtype=np.int8)
                ))
            report = client.health()
        assert len(report.results) == len(DEFAULT_SLOS)
        assert report.status in ("healthy", "degraded", "breach")
        assert registry.counter(
            names.SLO_EVALUATIONS, {"objective": "wall-p95"}
        ).value == 1

    def test_custom_specs_override_the_defaults(self, lhs):
        with repro.open_engine(metrics=MetricsRegistry()) as client:
            client.run(api.SpmmRequest(
                lhs=lhs, rhs=np.ones((64, 8), dtype=np.int8)
            ))
            impossible = SloSpec(
                name="1ns", kind="latency", objective=1e-9, quantile=0.5,
                degraded_burn=0.5, breach_burn=1.0,
            )
            report = client.health(specs=(impossible,))
        assert [r.spec.name for r in report.results] == ["1ns"]
        assert report.status == "breach"
