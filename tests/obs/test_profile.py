"""Continuous profiling: attribution, sampling, exports, overhead."""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

import repro
from repro import api
from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (
    NULL_PROFILER,
    PROFILE_SCHEMA,
    TRUNCATED_STACK,
    ProfileConfig,
    ProfileReport,
    Profiler,
    attribute,
    render_folded,
    render_speedscope,
)
from repro.obs.trace import Tracer


class TestProfileConfig:
    def test_defaults_are_valid(self):
        config = ProfileConfig()
        assert config.sample_rate == 1.0 and not config.memory

    @pytest.mark.parametrize("kwargs", [
        {"sample_rate": 0.0},
        {"sample_rate": -0.5},
        {"sample_rate": 1.5},
        {"max_stacks": 0},
    ])
    def test_bad_knobs_raise(self, kwargs):
        with pytest.raises(ConfigError):
            ProfileConfig(**kwargs)


class TestProfiler:
    def test_samples_record_phase_wall_and_stack(self):
        profiler = Profiler()
        with profiler.sample("phase-a"):
            time.sleep(0.002)
        report = profiler.report()
        assert report.sampled == 1 and report.skipped == 0
        (stat,) = report.stats
        assert stat.phase == "phase-a" and stat.count == 1
        assert stat.wall_s >= 0.002
        # collapsed stacks are root-first module:function frames ending
        # at the caller of sample()
        assert ";" in stat.stack
        assert stat.stack.endswith(
            ":test_samples_record_phase_wall_and_stack"
        )

    def test_sampling_rate_thins_deterministically(self):
        def drive(seed):
            profiler = Profiler(ProfileConfig(sample_rate=0.25, seed=seed))
            for _ in range(200):
                with profiler.sample("p"):
                    pass
            return profiler.report()

        a, b = drive(7), drive(7)
        assert a.sampled == b.sampled and a.skipped == b.skipped
        assert a.sampled + a.skipped == 200
        assert 0 < a.sampled < 200  # actually thinned, not all-or-nothing

    def test_max_stacks_folds_novel_stacks_into_truncated(self):
        profiler = Profiler(ProfileConfig(max_stacks=2))

        def from_a():
            with profiler.sample("p"):
                pass

        def from_b():
            with profiler.sample("p"):
                pass

        def from_c():
            with profiler.sample("p"):
                pass

        from_a(), from_b(), from_c(), from_c()
        report = profiler.report()
        stacks = {s.stack: s.count for s in report.stats}
        # bounded: max_stacks real stacks plus the fold bucket, however
        # many further novel stacks arrive
        assert len(stacks) == 3
        assert stacks[TRUNCATED_STACK] == 2  # both from_c() calls folded
        assert report.sampled == 4  # nothing dropped, only folded

    def test_memory_capture_records_tracemalloc_peak(self):
        profiler = Profiler(ProfileConfig(memory=True))
        with profiler.sample("alloc"):
            blob = bytearray(256 * 1024)
        del blob
        (stat,) = profiler.report().stats
        assert stat.peak_bytes >= 256 * 1024

    def test_report_round_trips_through_dict(self):
        profiler = Profiler()
        with profiler.sample("p"):
            pass
        report = profiler.report()
        doc = report.to_dict()
        assert doc["schema"] == PROFILE_SCHEMA
        restored = ProfileReport.from_dict(doc)
        assert restored.to_dict() == doc

    def test_wrong_schema_raises(self):
        with pytest.raises(ConfigError):
            ProfileReport.from_dict({"schema": 99})

    def test_phase_totals_roll_up(self):
        profiler = Profiler()
        for _ in range(3):
            with profiler.sample("a"):
                pass
        with profiler.sample("b"):
            pass
        totals = profiler.report().phase_totals()
        assert totals["a"]["count"] == 3 and totals["b"]["count"] == 1


class TestNullProfiler:
    def test_falsy_and_inert(self):
        assert not NULL_PROFILER
        sample = NULL_PROFILER.sample("anything")
        assert not sample
        with sample:
            pass
        report = NULL_PROFILER.report()
        assert report.sampled == 0 and report.stats == []


class TestExports:
    def _report(self):
        profiler = Profiler()
        with profiler.sample("phase-a"):
            time.sleep(0.001)
        with profiler.sample("phase-b"):
            pass
        return profiler.report()

    def test_folded_lines_are_weighted_stacks(self):
        report = self._report()
        lines = render_folded(report).splitlines()
        assert len(lines) == 2
        for line in lines:
            stack, _, weight = line.rpartition(" ")
            assert ";" in stack and int(weight) >= 0
        assert any(ln.startswith("phase-a;") for ln in lines)

    def test_folded_weight_modes(self):
        report = self._report()
        samples = render_folded(report, weight="samples").splitlines()
        assert all(ln.rpartition(" ")[2] == "1" for ln in samples)
        with pytest.raises(ConfigError):
            render_folded(report, weight="nonsense")

    def test_speedscope_document_shape(self):
        report = self._report()
        doc = json.loads(render_speedscope(report, name="t"))
        assert doc["$schema"].startswith("https://www.speedscope.app")
        assert {p["name"] for p in doc["profiles"]} == {"phase-a", "phase-b"}
        frames = doc["shared"]["frames"]
        for profile in doc["profiles"]:
            assert profile["type"] == "sampled"
            assert len(profile["samples"]) == len(profile["weights"])
            for stack in profile["samples"]:
                assert all(0 <= i < len(frames) for i in stack)
            assert profile["endValue"] == sum(profile["weights"])

    def test_save_writes_speedscope_json(self, tmp_path):
        path = self._report().save(tmp_path / "p.json")
        assert json.loads(path.read_text())["exporter"] == "repro.obs.profile"


class TestAttribute:
    def _doc(self):
        return {
            "request_id": 1, "op": "spmm", "session": "s",
            "spans": [
                {"span_id": 1, "parent_id": None, "name": "request",
                 "wall_s": 0.010, "attrs": {}},
                {"span_id": 2, "parent_id": 1, "name": "kernel-launch",
                 "wall_s": 0.007,
                 "attrs": {"backend": "numpy", "plan_key": "k1"}},
            ],
        }

    def test_self_time_is_wall_minus_children(self):
        rows = attribute([self._doc()])
        by_phase = {r["phase"]: r for r in rows}
        assert by_phase["kernel-launch"]["self_s"] == pytest.approx(0.007)
        assert by_phase["request"]["self_s"] == pytest.approx(0.003)
        assert by_phase["request"]["wall_s"] == pytest.approx(0.010)

    def test_rows_sorted_by_self_time_desc(self):
        rows = attribute([self._doc()] * 3)
        assert [r["phase"] for r in rows] == ["kernel-launch", "request"]
        assert rows[0]["count"] == 3

    def test_aggregates_by_backend_and_plan_key(self):
        other = self._doc()
        other["spans"][1]["attrs"]["plan_key"] = "k2"
        rows = attribute([self._doc(), other])
        keys = {(r["phase"], r["plan_key"]) for r in rows}
        assert ("kernel-launch", "k1") in keys
        assert ("kernel-launch", "k2") in keys

    def test_accepts_live_traces(self):
        tracer = Tracer(enabled=True)
        t = tracer.request(op="spmm", session="s", request_id=1)
        with t.span("outer"):
            pass
        tracer.finish(t)
        rows = attribute(tracer.finished())
        assert rows and rows[0]["phase"] == "outer"

    def test_negative_self_time_clamps_to_zero(self):
        doc = self._doc()
        doc["spans"][1]["wall_s"] = 0.5  # child outlives parent (clock skew)
        rows = attribute([doc])
        request = next(r for r in rows if r["phase"] == "request")
        assert request["self_s"] == 0.0


@pytest.fixture
def lhs():
    return repro.SparseMatrix.from_dense(
        np.eye(64, dtype=np.int8), vector_length=8
    )


def _rhs():
    return np.ones((64, 8), dtype=np.int8)


class TestEngineIntegration:
    def test_profiled_engine_captures_both_phases(self, lhs):
        with repro.open_engine(
            metrics=MetricsRegistry(), profile=ProfileConfig()
        ) as client:
            for _ in range(4):
                client.run(api.SpmmRequest(lhs=lhs, rhs=_rhs()))
            report = client.profiler.report()
        assert set(report.phases) == {"batcher-dispatch", "backend-execute"}
        totals = report.phase_totals()
        assert totals["batcher-dispatch"]["count"] >= 1
        assert totals["backend-execute"]["count"] >= 1
        assert all(t["wall_s"] > 0 for t in totals.values())

    def test_prebuilt_profiler_passes_through(self, lhs):
        profiler = Profiler(ProfileConfig(sample_rate=0.5, seed=1))
        with repro.open_engine(
            metrics=MetricsRegistry(), profile=profiler
        ) as client:
            assert client.profiler is profiler
            client.run(api.SpmmRequest(lhs=lhs, rhs=_rhs()))

    def test_unprofiled_engine_holds_the_null_profiler(self, lhs):
        with repro.open_engine(metrics=MetricsRegistry()) as client:
            assert client.profiler is NULL_PROFILER
            client.run(api.SpmmRequest(lhs=lhs, rhs=_rhs()))
            assert client.profiler.report().sampled == 0


class TestDisabledOverhead:
    def test_disabled_profiler_costs_under_five_percent_of_a_request(self, lhs):
        """The null-profiler path must be invisible next to a request.

        Mirrors the disabled-tracer guard: measure the whole disabled
        per-dispatch work (one sample() call, one no-op context
        manager) and pin it below 5% of the measured mean request wall
        on a serve microload.
        """
        registry = MetricsRegistry()
        with repro.open_engine(metrics=registry) as client:
            assert client.profiler is NULL_PROFILER
            for _ in range(8):
                client.run(api.SpmmRequest(lhs=lhs, rhs=_rhs(), session="s"))
        from repro.obs import names

        mean_request_s = registry.histogram(names.REQUEST_WALL).mean
        assert mean_request_s > 0

        n = 10_000
        t0 = time.perf_counter()
        for _ in range(n):
            with NULL_PROFILER.sample("batcher-dispatch"):
                pass
            with NULL_PROFILER.sample("backend-execute"):
                pass
        per_request_s = (time.perf_counter() - t0) / n
        assert per_request_s < 0.05 * mean_request_s, (
            f"disabled-path cost {per_request_s * 1e6:.2f}us is not <5% of "
            f"the {mean_request_s * 1e3:.2f}ms mean request"
        )
