"""``repro obs`` CLI: summary / export / tail over real artifacts."""

from __future__ import annotations

import json

import pytest

from repro.obs import names
from repro.obs.cli import main
from repro.obs.export import load_json, parse_prometheus, write_snapshot
from repro.obs.metrics import MetricsRegistry
from repro.obs.names import STANDARD_METRICS, declare_standard
from repro.obs.trace import Tracer


@pytest.fixture
def snapshot(tmp_path):
    r = declare_standard(MetricsRegistry())
    r.counter(names.REQUESTS, {"session": "s"}).inc(3)
    r.histogram(names.REQUEST_WALL).observe(0.01)
    return write_snapshot(r, tmp_path / "metrics.json")


@pytest.fixture
def trace_log(tmp_path):
    tracer = Tracer()
    t = tracer.request(op="spmm", session="s", request_id=1)
    with t.span("admission", queue_depth=0):
        pass
    t.add_span("kernel-launch", 0.0, 0.001, batch_id=1)
    tracer.finish(t)
    return tracer.export_jsonl(tmp_path / "trace.jsonl")


class TestSummary:
    def test_renders_tables_from_snapshot(self, snapshot, capsys):
        assert main(["summary", "--metrics", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert names.REQUESTS in out and "session=s" in out

    def test_missing_snapshot_falls_back_to_contract(self, tmp_path, capsys):
        assert main(["summary", "--metrics", str(tmp_path / "nope.json")]) == 0
        assert "standard contract" in capsys.readouterr().out


class TestExport:
    def test_prometheus_names_full_contract_even_without_snapshot(
        self, tmp_path, capsys
    ):
        missing = str(tmp_path / "nope.json")
        assert main(["export", "--metrics", missing, "--format", "prometheus"]) == 0
        families = parse_prometheus(capsys.readouterr().out)
        assert set(families) == {m[0] for m in STANDARD_METRICS}

    def test_prometheus_round_trip_from_snapshot(self, snapshot, capsys):
        assert main([
            "export", "--metrics", str(snapshot), "--format", "prometheus",
        ]) == 0
        families = parse_prometheus(capsys.readouterr().out)
        sample, = (
            s for s in families[names.REQUESTS]["samples"]
            if s["labels"] == {"session": "s"}
        )
        assert sample["value"] == 3

    def test_json_export_to_file(self, snapshot, tmp_path):
        out = tmp_path / "again.json"
        assert main([
            "export", "--metrics", str(snapshot), "--format", "json",
            "--out", str(out),
        ]) == 0
        restored = load_json(out.read_text())
        assert restored.counter(names.REQUESTS, {"session": "s"}).value == 3


class TestTail:
    def test_renders_span_tree(self, trace_log, capsys):
        assert main(["tail", "--trace", str(trace_log), "-n", "5"]) == 0
        out = capsys.readouterr().out
        assert "request 1 [spmm@s]" in out
        assert "admission" in out and "queue_depth=0" in out
        assert "kernel-launch" in out

    def test_missing_trace_log_fails_with_hint(self, tmp_path, capsys):
        assert main(["tail", "--trace", str(tmp_path / "nope.jsonl")]) == 1
        assert "serve --replay" in capsys.readouterr().err


class TestEntryPoints:
    def test_no_subcommand_prints_help(self, capsys):
        assert main([]) == 2
        assert "summary" in capsys.readouterr().out

    def test_registered_with_the_repro_umbrella(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["--help"]) == 0
        assert "obs" in capsys.readouterr().out

    def test_runnable_as_module(self, snapshot):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs", "export", "--metrics",
             str(snapshot), "--format", "prometheus"],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert names.REQUESTS in proc.stdout


def _trace_doc() -> dict:
    return {
        "request_id": 7, "op": "spmm", "session": "s",
        "spans": [
            {"span_id": 1, "parent_id": None, "name": "outer",
             "start_s": 0.0, "end_s": 0.002, "wall_s": 0.002, "attrs": {}},
            {"span_id": 2, "parent_id": 1, "name": "inner",
             "start_s": 0.0, "end_s": 0.001, "wall_s": 0.001,
             "attrs": {"k": "v"}},
        ],
    }


def test_tail_indents_children_under_parents(tmp_path, capsys):
    log = tmp_path / "t.jsonl"
    log.write_text(json.dumps(_trace_doc()) + "\n")
    assert main(["tail", "--trace", str(log)]) == 0
    lines = capsys.readouterr().out.splitlines()
    outer = next(ln for ln in lines if "outer" in ln)
    inner = next(ln for ln in lines if "inner" in ln)
    assert len(inner) - len(inner.lstrip()) > len(outer) - len(outer.lstrip())
    assert "k=v" in inner
