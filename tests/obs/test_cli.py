"""``repro obs`` CLI: summary/export/tail/profile/health over artifacts."""

from __future__ import annotations

import json

import pytest

from repro.obs import names
from repro.obs.cli import main
from repro.obs.export import load_json, parse_prometheus, write_snapshot
from repro.obs.metrics import MetricsRegistry
from repro.obs.names import STANDARD_METRICS, declare_standard
from repro.obs.trace import Tracer


@pytest.fixture
def snapshot(tmp_path):
    r = declare_standard(MetricsRegistry())
    r.counter(names.REQUESTS, {"session": "s"}).inc(3)
    r.histogram(names.REQUEST_WALL).observe(0.01)
    return write_snapshot(r, tmp_path / "metrics.json")


@pytest.fixture
def trace_log(tmp_path):
    tracer = Tracer()
    t = tracer.request(op="spmm", session="s", request_id=1)
    with t.span("admission", queue_depth=0):
        pass
    t.add_span("kernel-launch", 0.0, 0.001, batch_id=1)
    tracer.finish(t)
    return tracer.export_jsonl(tmp_path / "trace.jsonl")


class TestSummary:
    def test_renders_tables_from_snapshot(self, snapshot, capsys):
        assert main(["summary", "--metrics", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert names.REQUESTS in out and "session=s" in out

    def test_missing_snapshot_falls_back_to_contract(self, tmp_path, capsys):
        assert main(["summary", "--metrics", str(tmp_path / "nope.json")]) == 0
        assert "standard contract" in capsys.readouterr().out


class TestExport:
    def test_prometheus_names_full_contract_even_without_snapshot(
        self, tmp_path, capsys
    ):
        missing = str(tmp_path / "nope.json")
        assert main(["export", "--metrics", missing, "--format", "prometheus"]) == 0
        families = parse_prometheus(capsys.readouterr().out)
        assert set(families) == {m[0] for m in STANDARD_METRICS}

    def test_prometheus_round_trip_from_snapshot(self, snapshot, capsys):
        assert main([
            "export", "--metrics", str(snapshot), "--format", "prometheus",
        ]) == 0
        families = parse_prometheus(capsys.readouterr().out)
        sample, = (
            s for s in families[names.REQUESTS]["samples"]
            if s["labels"] == {"session": "s"}
        )
        assert sample["value"] == 3

    def test_json_export_to_file(self, snapshot, tmp_path):
        out = tmp_path / "again.json"
        assert main([
            "export", "--metrics", str(snapshot), "--format", "json",
            "--out", str(out),
        ]) == 0
        restored = load_json(out.read_text())
        assert restored.counter(names.REQUESTS, {"session": "s"}).value == 3


class TestTail:
    def test_renders_span_tree(self, trace_log, capsys):
        assert main(["tail", "--trace", str(trace_log), "-n", "5"]) == 0
        out = capsys.readouterr().out
        assert "request 1 [spmm@s]" in out
        assert "admission" in out and "queue_depth=0" in out
        assert "kernel-launch" in out

    def test_missing_trace_log_fails_with_hint(self, tmp_path, capsys):
        assert main(["tail", "--trace", str(tmp_path / "nope.jsonl")]) == 1
        assert "serve --replay" in capsys.readouterr().err


@pytest.fixture
def mixed_trace_log(tmp_path):
    """Four traces over two sessions and two plan keys."""
    tracer = Tracer(enabled=True)
    for i in range(4):
        t = tracer.request(op="spmm", session=f"s{i % 2}", request_id=i + 1)
        t.add_span(
            "kernel-launch", 0.0, 0.001,
            backend="numpy", plan_key=f"k{i % 2}",
        )
        tracer.finish(t)
    return tracer.export_jsonl(tmp_path / "trace.jsonl")


class TestTailFilters:
    def _headers(self, out):
        return [ln for ln in out.splitlines() if ln.startswith("request ")]

    def test_session_filter(self, mixed_trace_log, capsys):
        assert main([
            "tail", "--trace", str(mixed_trace_log), "--session", "s1",
        ]) == 0
        out = capsys.readouterr().out
        assert len(self._headers(out)) == 2 and "@s0" not in out

    def test_plan_key_filter_matches_span_attrs(self, mixed_trace_log, capsys):
        assert main([
            "tail", "--trace", str(mixed_trace_log), "--plan-key", "k0",
        ]) == 0
        out = capsys.readouterr().out
        assert "@s0" in out and "@s1" not in out

    def test_no_matches_says_so(self, mixed_trace_log, capsys):
        assert main([
            "tail", "--trace", str(mixed_trace_log), "--session", "nope",
        ]) == 0
        assert "(no matching traces)" in capsys.readouterr().out

    def test_filters_compose_with_n(self, mixed_trace_log, capsys):
        assert main([
            "tail", "--trace", str(mixed_trace_log), "--session", "s0",
            "-n", "1",
        ]) == 0
        headers = self._headers(capsys.readouterr().out)
        assert headers == ["request 3 [spmm@s0]"]  # the most recent match


class TestTailFollow:
    def test_follow_prints_appended_traces(self, tmp_path, capsys):
        import threading

        log = tmp_path / "t.jsonl"
        log.write_text(json.dumps(_trace_doc()) + "\n")

        def append_later():
            doc = {**_trace_doc(), "request_id": 8}
            with log.open("a") as f:
                f.write(json.dumps(doc) + "\n")

        timer = threading.Timer(0.05, append_later)
        timer.start()
        try:
            assert main([
                "tail", "--trace", str(log), "--follow",
                "--interval", "0.02", "--max-polls", "20",
            ]) == 0
        finally:
            timer.cancel()
        out = capsys.readouterr().out
        assert "request 7" in out and "request 8" in out

    def test_follow_survives_a_missing_then_created_file(self, tmp_path, capsys):
        log = tmp_path / "later.jsonl"
        assert main([
            "tail", "--trace", str(log), "--follow",
            "--interval", "0.01", "--max-polls", "2",
        ]) == 0  # no error: the file may not exist yet
        log.write_text(json.dumps(_trace_doc()) + "\n")
        assert main([
            "tail", "--trace", str(log), "--follow",
            "--interval", "0.01", "--max-polls", "2",
        ]) == 0
        assert "request 7" in capsys.readouterr().out

    def test_follow_resets_on_truncation(self, tmp_path, capsys):
        # the tracer rewrites its ring file atomically; a shrink means
        # a rotation and the follower must start over, not explode
        log = tmp_path / "t.jsonl"
        lines = [json.dumps({**_trace_doc(), "request_id": i}) for i in (1, 2)]
        log.write_text("\n".join(lines) + "\n")
        assert main([
            "tail", "--trace", str(log), "--follow",
            "--interval", "0.01", "--max-polls", "1",
        ]) == 0
        log.write_text(json.dumps({**_trace_doc(), "request_id": 9}) + "\n")
        assert main([
            "tail", "--trace", str(log), "--follow",
            "--interval", "0.01", "--max-polls", "1",
        ]) == 0
        assert "request 9" in capsys.readouterr().out


class TestProfileCommand:
    def test_renders_self_time_table(self, mixed_trace_log, capsys):
        assert main(["profile", "--trace", str(mixed_trace_log)]) == 0
        out = capsys.readouterr().out
        assert "self ms" in out and "kernel-launch" in out
        assert "k0" in out and "k1" in out

    def test_top_caps_rows_and_says_so(self, mixed_trace_log, capsys):
        assert main([
            "profile", "--trace", str(mixed_trace_log), "--top", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "more row(s)" in out

    def test_json_output_is_machine_readable(self, mixed_trace_log, capsys):
        assert main([
            "profile", "--trace", str(mixed_trace_log), "--json",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows and {"phase", "self_s", "count"} <= set(rows[0])

    def test_missing_trace_fails_with_hint(self, tmp_path, capsys):
        assert main(["profile", "--trace", str(tmp_path / "no.jsonl")]) == 1
        assert "serve --replay" in capsys.readouterr().err


class TestHealthCommand:
    def _breaching_snapshot(self, tmp_path):
        r = declare_standard(MetricsRegistry())
        for _ in range(20):
            r.histogram(names.REQUEST_WALL).observe(2.0)  # way over 250ms
        return write_snapshot(r, tmp_path / "bad.json")

    def test_missing_snapshot_probes_healthy(self, tmp_path, capsys):
        # the cli-smoke CI job runs exactly this before any artifact
        # exists: the empty standard contract must grade healthy
        assert main([
            "health", "--metrics", str(tmp_path / "no.json"), "--probe",
        ]) == 0
        out = capsys.readouterr().out
        assert "overall: healthy" in out and "standard contract" in out

    def test_probe_exit_code_reflects_breach(self, tmp_path, capsys):
        snapshot = self._breaching_snapshot(tmp_path)
        assert main(["health", "--metrics", str(snapshot), "--probe"]) == 2
        out = capsys.readouterr().out
        assert "overall: breach" in out and "wall-p95" in out

    def test_without_probe_always_exits_zero(self, tmp_path):
        snapshot = self._breaching_snapshot(tmp_path)
        assert main(["health", "--metrics", str(snapshot)]) == 0

    def test_out_writes_the_report_json(self, snapshot, tmp_path):
        out = tmp_path / "health.json"
        assert main([
            "health", "--metrics", str(snapshot), "--out", str(out),
        ]) == 0
        doc = json.loads(out.read_text())
        assert doc["status"] in ("healthy", "degraded", "breach")
        assert len(doc["objectives"]) == 4

    def test_custom_slos_from_file(self, snapshot, tmp_path, capsys):
        specs = tmp_path / "slos.json"
        specs.write_text(json.dumps([
            {"name": "custom-lat", "kind": "latency", "objective": 0.5},
        ]))
        assert main([
            "health", "--metrics", str(snapshot), "--slos", str(specs),
        ]) == 0
        out = capsys.readouterr().out
        assert "custom-lat" in out and "wall-p95" not in out


class TestEntryPoints:
    def test_no_subcommand_prints_help(self, capsys):
        assert main([]) == 2
        assert "summary" in capsys.readouterr().out

    def test_registered_with_the_repro_umbrella(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["--help"]) == 0
        assert "obs" in capsys.readouterr().out

    def test_runnable_as_module(self, snapshot):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs", "export", "--metrics",
             str(snapshot), "--format", "prometheus"],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert names.REQUESTS in proc.stdout


def _trace_doc() -> dict:
    return {
        "request_id": 7, "op": "spmm", "session": "s",
        "spans": [
            {"span_id": 1, "parent_id": None, "name": "outer",
             "start_s": 0.0, "end_s": 0.002, "wall_s": 0.002, "attrs": {}},
            {"span_id": 2, "parent_id": 1, "name": "inner",
             "start_s": 0.0, "end_s": 0.001, "wall_s": 0.001,
             "attrs": {"k": "v"}},
        ],
    }


def test_tail_indents_children_under_parents(tmp_path, capsys):
    log = tmp_path / "t.jsonl"
    log.write_text(json.dumps(_trace_doc()) + "\n")
    assert main(["tail", "--trace", str(log)]) == 0
    lines = capsys.readouterr().out.splitlines()
    outer = next(ln for ln in lines if "outer" in ln)
    inner = next(ln for ln in lines if "inner" in ln)
    assert len(inner) - len(inner.lstrip()) > len(outer) - len(outer.lstrip())
    assert "k=v" in inner
