"""The serving stack under observation: traces, ids, metrics, overhead."""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro
from repro import api
from repro.errors import AdmissionError
from repro.obs import names
from repro.obs.export import parse_prometheus, render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.names import STANDARD_METRICS
from repro.obs.trace import Tracer
from repro.serve.batcher import BatchPolicy


@pytest.fixture
def lhs():
    return repro.SparseMatrix.from_dense(
        np.eye(64, dtype=np.int8), vector_length=8
    )


def _rhs():
    return np.ones((64, 8), dtype=np.int8)


class TestTracedRequests:
    def test_response_carries_the_full_span_tree(self, lhs):
        with repro.open_engine(metrics=MetricsRegistry(), trace=True) as client:
            r = client.run(api.SpmmRequest(lhs=lhs, rhs=_rhs(), session="s"))
        spans = {s["name"]: s for s in r.trace["spans"]}
        assert set(spans) >= {
            "admission", "plan-resolution", "queue", "kernel-launch",
        }
        assert r.trace["request_id"] == r.request_id == 1
        assert r.trace["op"] == "spmm" and r.trace["session"] == "s"
        # wall + modelled timings on the launch span
        launch = spans["kernel-launch"]
        assert launch["wall_s"] > 0.0
        assert launch["attrs"]["modelled_time_s"] == pytest.approx(r.time_s)
        assert launch["attrs"]["plan_key"] == r.plan.key
        assert launch["attrs"]["backend"] == r.backend
        assert spans["queue"]["attrs"]["queue_wait_s"] == pytest.approx(
            r.queue_wait_s
        )
        assert spans["admission"]["attrs"]["queue_depth"] == 0
        assert spans["plan-resolution"]["attrs"]["plan_key"] == r.plan.key

    def test_every_request_class_is_traceable(self, lhs):
        mask = repro.SparseMatrix.from_dense(
            np.eye(64, dtype=np.int8), vector_length=8
        )
        requests = [
            api.SpmmRequest(lhs=lhs, rhs=_rhs()),
            api.SddmmRequest(
                mask=mask,
                a=np.ones((64, 32), dtype=np.int8),
                b=np.ones((32, 64), dtype=np.int8),
            ),
            api.AttentionRequest(seq_len=128, num_layers=1),
        ]
        with repro.open_engine(metrics=MetricsRegistry(), trace=True) as client:
            for req in requests:
                r = client.run(req)
                spans = [s["name"] for s in r.trace["spans"]]
                assert "kernel-launch" in spans, req.op
                assert r.trace["op"] == req.op

    def test_traces_ring_buffer_on_the_tracer(self, lhs):
        tracer = Tracer(enabled=True, keep=8)
        with repro.open_engine(metrics=MetricsRegistry(), tracer=tracer) as client:
            for _ in range(3):
                client.run(api.SpmmRequest(lhs=lhs, rhs=_rhs()))
        assert [t.request_id for t in tracer.finished()] == [1, 2, 3]

    def test_untraced_engine_returns_no_trace_but_same_answers(self, lhs):
        with repro.open_engine(metrics=MetricsRegistry()) as client:
            r = client.run(api.SpmmRequest(lhs=lhs, rhs=_rhs()))
        assert r.trace is None
        assert r.request_id == 1  # ids are assigned regardless of tracing
        with repro.open_engine(metrics=MetricsRegistry(), trace=True) as client:
            traced = client.run(api.SpmmRequest(lhs=lhs, rhs=_rhs()))
        np.testing.assert_array_equal(r.output, traced.output)


class TestRequestIds:
    def test_ids_are_monotonic_across_sessions(self, lhs):
        with repro.open_engine(metrics=MetricsRegistry()) as client:
            ids = [
                client.run(api.SpmmRequest(lhs=lhs, rhs=_rhs())).request_id
                for _ in range(3)
            ]
            ids.append(
                client.run(api.AttentionRequest(seq_len=128, num_layers=1))
                .request_id
            )
        assert ids == [1, 2, 3, 4]

    def test_ticket_id_is_the_request_id(self, lhs):
        with repro.open_engine(metrics=MetricsRegistry()) as client:
            handle = client.submit_async(api.SpmmRequest(lhs=lhs, rhs=_rhs()))
            response = handle.result()
            assert handle.id == response.request_id
            assert client.result(handle.id).request_id == handle.id

    def test_one_shot_calls_have_no_request_id(self, lhs):
        r = api.run(api.SpmmRequest(lhs=lhs, rhs=_rhs()))
        assert r.request_id is None and r.trace is None


class TestAdmission:
    def _congested(self, metrics, **kwargs):
        # max_wait_s high enough that nothing flushes while we submit
        return repro.open_engine(
            policy=BatchPolicy(
                max_batch_size=64, max_wait_s=5.0, max_queue_depth=1
            ),
            metrics=metrics,
            **kwargs,
        )

    def test_rejection_names_the_request_id(self, lhs):
        registry = MetricsRegistry()
        with self._congested(registry) as client:
            client.submit(api.SpmmRequest(lhs=lhs, rhs=_rhs(), session="s"))
            with pytest.raises(AdmissionError, match=r"request #2:"):
                client.submit(api.SpmmRequest(lhs=lhs, rhs=_rhs(), session="s"))
            client.flush()
        counter = registry.counter(names.REJECTIONS, {"session": "s"})
        assert counter.value == 1

    def test_rejected_trace_is_finished_and_marked(self, lhs):
        tracer = Tracer(enabled=True)
        with self._congested(MetricsRegistry(), tracer=tracer) as client:
            client.submit(api.SpmmRequest(lhs=lhs, rhs=_rhs()))
            with pytest.raises(AdmissionError):
                client.submit(api.SpmmRequest(lhs=lhs, rhs=_rhs()))
            client.flush()
        rejected = [t for t in tracer.finished() if t.request_id == 2]
        assert rejected
        admission = rejected[0].find("admission")
        assert admission.attrs["rejected"] is True
        assert admission.end_s is not None


class TestMetricsPublication:
    def test_serving_populates_the_standard_families(self, lhs):
        registry = MetricsRegistry()
        with repro.open_engine(metrics=registry) as client:
            for _ in range(4):
                client.run(api.SpmmRequest(lhs=lhs, rhs=_rhs(), session="s"))
        assert registry.counter(names.REQUESTS, {"session": "s"}).value == 4
        assert registry.counter(names.BATCHES, {"session": "s"}).value >= 1
        # latency histograms aggregate across sessions (bounded
        # cardinality); counters carry the per-session breakdown
        wall = registry.histogram(names.REQUEST_WALL)
        modelled = registry.histogram(names.REQUEST_MODELLED)
        assert wall.count == modelled.count == 4
        assert wall.sum > modelled.sum  # wall includes queueing + dispatch
        hits = registry.counter(names.CACHE_HITS).value
        misses = registry.counter(names.CACHE_MISSES).value
        assert misses >= 1 and hits + misses >= 4

    def test_prometheus_export_names_every_documented_metric(self, lhs):
        registry = MetricsRegistry()
        with repro.open_engine(metrics=registry) as client:
            client.run(api.SpmmRequest(lhs=lhs, rhs=_rhs()))
        families = parse_prometheus(render_prometheus(registry))
        assert set(families) == {m[0] for m in STANDARD_METRICS}

    def test_engines_default_to_the_process_registry(self, lhs):
        from repro.obs.metrics import get_registry, set_registry

        fresh = MetricsRegistry()
        old = set_registry(fresh)
        try:
            with repro.open_engine() as client:
                assert client.metrics is fresh
        finally:
            set_registry(old)

    def test_retune_scheduler_publishes_cycles(self, lhs):
        from repro.autotune import RetunePolicy

        registry = MetricsRegistry()
        with repro.open_engine(
            metrics=registry, retune=RetunePolicy(interval_s=3600.0)
        ) as client:
            client.run(api.SpmmRequest(lhs=lhs, rhs=_rhs()))
            client.retune.run_once()
        assert registry.counter(names.RETUNE_CYCLES).value >= 1


class TestKernelWallResolution:
    def test_kernel_wall_buckets_resolve_below_a_microsecond(self):
        """The fastpath regression: sub-µs kernels need sub-µs buckets.

        Fastpath kernels finish in hundreds of nanoseconds. Under the
        default time buckets (floor 1 µs) every observation lands in
        the first bucket and the p50 interpolates to a constant ~0.5 µs
        whatever the true latency — the KERNEL_WALL-specific layout
        must keep the quantiles meaningful instead.
        """
        from repro.obs.names import KERNEL_WALL_BUCKETS_S, declare_standard

        assert KERNEL_WALL_BUCKETS_S[0] == pytest.approx(1e-8)
        declared = dict(
            (name, buckets) for name, _, _, buckets in STANDARD_METRICS
        )
        assert declared[names.KERNEL_WALL] == KERNEL_WALL_BUCKETS_S

        registry = declare_standard(MetricsRegistry())
        h = registry.histogram(
            names.KERNEL_WALL, {"op": "spmm", "backend": "fastpath-vectorized"}
        )
        true_s = 3e-7  # a realistic fastpath kernel wall
        for _ in range(100):
            h.observe(true_s)
        p50 = h.quantile(0.50)
        # within one power-of-four bucket of the truth, not a constant
        assert true_s / 4 <= p50 <= true_s * 4, (
            f"p50 {p50:.3e}s is not within a bucket of the true {true_s:.3e}s"
        )

    def test_served_requests_record_kernel_wall_at_fine_resolution(self, lhs):
        from repro.obs.names import KERNEL_WALL_BUCKETS_S

        registry = MetricsRegistry()
        with repro.open_engine(metrics=registry) as client:
            client.run(api.SpmmRequest(lhs=lhs, rhs=_rhs()))
        samples = registry.samples(names.KERNEL_WALL)
        assert samples
        for _, h in samples:
            assert h.buckets == KERNEL_WALL_BUCKETS_S


class TestDisabledOverhead:
    def test_disabled_tracer_costs_under_five_percent_of_a_request(self, lhs):
        """The null-trace path must be invisible next to a real request.

        Measures the *entire* per-request disabled-path work (hand out
        the null trace, guard on it, open/close a null span, retire it)
        and asserts it is < 5% of the measured mean request wall time
        on a serve microload — the acceptance bound, with ~1000x of
        headroom in practice.
        """
        registry = MetricsRegistry()
        with repro.open_engine(metrics=registry) as client:
            assert not client.tracer.enabled
            for _ in range(8):
                client.run(api.SpmmRequest(lhs=lhs, rhs=_rhs(), session="s"))
        wall = registry.histogram(names.REQUEST_WALL)
        mean_request_s = wall.mean
        assert mean_request_s > 0

        tracer = Tracer(enabled=False)
        n = 10_000
        t0 = time.perf_counter()
        for i in range(n):
            trace = tracer.request(op="spmm", session="s", request_id=i)
            if trace:  # the hot-path guard the engine uses
                raise AssertionError("disabled tracer handed out a live trace")
            with trace.span("admission", queue_depth=0):
                pass
            trace.add_span("queue", 0.0, 0.0)
            tracer.finish(trace)
        per_request_s = (time.perf_counter() - t0) / n
        assert per_request_s < 0.05 * mean_request_s, (
            f"disabled-path cost {per_request_s * 1e6:.2f}us is not <5% of "
            f"the {mean_request_s * 1e3:.2f}ms mean request"
        )
