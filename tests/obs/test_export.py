"""Exporters: JSON snapshot round-trip, Prometheus render + parse."""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import ConfigError
from repro.obs import names
from repro.obs.export import (
    EXPORT_SCHEMA,
    load_json,
    parse_prometheus,
    render_json,
    render_prometheus,
    summarize,
    write_snapshot,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.names import STANDARD_METRICS, declare_standard


def _populated() -> MetricsRegistry:
    r = declare_standard(MetricsRegistry())
    r.counter(names.REQUESTS, {"session": "ffn"}).inc(12)
    r.gauge(names.QUEUE_DEPTH, {"session": "ffn"}).set(2)
    h = r.histogram(names.REQUEST_WALL)
    for v in (0.001, 0.004, 0.2):
        h.observe(v)
    r.histogram(names.BATCH_SIZE).observe(4)
    return r


class TestJsonSnapshot:
    def test_round_trip_is_lossless(self):
        r = _populated()
        restored = load_json(render_json(r))
        assert restored.to_dict() == r.to_dict()

    def test_schema_versioned(self):
        doc = json.loads(render_json(MetricsRegistry()))
        assert doc["schema"] == EXPORT_SCHEMA

    def test_wrong_schema_raises(self):
        with pytest.raises(ConfigError):
            load_json(json.dumps({"schema": 99, "metrics": {}}))

    def test_write_snapshot_atomic_and_readable(self, tmp_path):
        path = write_snapshot(_populated(), tmp_path / "m.json")
        assert load_json(path.read_text()).names() == _populated().names()

    def test_render_deterministic(self):
        assert render_json(_populated()) == render_json(_populated())


class TestPrometheus:
    def test_every_standard_metric_named_even_when_idle(self):
        text = render_prometheus(declare_standard(MetricsRegistry()))
        families = parse_prometheus(text)
        assert set(families) == {m[0] for m in STANDARD_METRICS}
        for name, kind, _, _ in STANDARD_METRICS:
            assert families[name]["kind"] == kind
            assert families[name]["help"]

    def test_histogram_expands_to_cumulative_buckets(self):
        r = MetricsRegistry()
        h = r.histogram("h", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 99.0):
            h.observe(v)
        families = parse_prometheus(render_prometheus(r))
        series = {
            (s["series"], s["labels"].get("le")): s["value"]
            for s in families["h"]["samples"]
        }
        assert series[("h_bucket", "1")] == 1
        assert series[("h_bucket", "2")] == 2
        assert series[("h_bucket", "+Inf")] == 3  # cumulative
        assert series[("h_count", None)] == 3
        assert series[("h_sum", None)] == pytest.approx(101.0)

    def test_labels_render_sorted_and_parse_back(self):
        r = MetricsRegistry()
        r.counter("c_total", {"b": "y", "a": "x"}).inc(2)
        text = render_prometheus(r)
        assert 'c_total{a="x",b="y"} 2' in text
        sample, = parse_prometheus(text)["c_total"]["samples"]
        assert sample["labels"] == {"a": "x", "b": "y"}

    def test_parser_is_strict(self):
        with pytest.raises(ConfigError):
            parse_prometheus("what even is this line")
        with pytest.raises(ConfigError):
            parse_prometheus("orphan_metric 3")  # no TYPE/HELP declared
        with pytest.raises(ConfigError):
            parse_prometheus("# TYPE x summary\nx 1")

    @pytest.mark.parametrize("value", [
        'quote:"double"',
        "back\\slash",
        "new\nline",
        'all\\of\n"them",together',
        "plan|spmm|512x512x64,v=8",
    ])
    def test_label_values_escape_and_round_trip(self, value):
        r = MetricsRegistry()
        r.counter("c_total", {"plan_key": value}).inc(1)
        text = render_prometheus(r)
        # the exposition stays one sample per line whatever the value
        assert sum(not ln.startswith("#") for ln in text.splitlines()) == 1
        sample, = parse_prometheus(text)["c_total"]["samples"]
        assert sample["labels"] == {"plan_key": value}

    def test_escaped_rendering_matches_prometheus_conventions(self):
        r = MetricsRegistry()
        r.counter("c_total", {"k": 'a\\b"c\nd'}).inc(1)
        assert 'c_total{k="a\\\\b\\"c\\nd"} 1' in render_prometheus(r)

    def test_unterminated_label_value_is_rejected(self):
        with pytest.raises(ConfigError):
            parse_prometheus('# TYPE c_total counter\nc_total{k="open 1')
        with pytest.raises(ConfigError):
            parse_prometheus('# TYPE c_total counter\nc_total{k="trail\\"} 1')

    def test_integer_values_have_no_decimal_point(self):
        r = MetricsRegistry()
        r.counter("c_total").inc(5)
        assert "c_total 5\n" in render_prometheus(r)

    def test_infinite_bound_renders_plus_inf(self):
        r = MetricsRegistry()
        r.histogram("h", buckets=(1.0,)).observe(9)
        text = render_prometheus(r)
        assert 'h_bucket{le="+Inf"} 1' in text
        sample = [
            s for s in parse_prometheus(text)["h"]["samples"]
            if s["labels"].get("le") == "+Inf"
        ]
        assert sample and sample[0]["value"] == 1


class TestSummary:
    def test_summarize_mentions_every_populated_family(self):
        text = summarize(_populated())
        for name in (names.REQUESTS, names.QUEUE_DEPTH, names.REQUEST_WALL):
            assert name in text

    def test_summarize_empty_registry(self):
        assert summarize(MetricsRegistry()) == "(no metrics recorded)"

    def test_infinity_never_leaks_into_tables(self):
        text = summarize(_populated())
        assert str(math.inf) not in text
