"""Tracer / RequestTrace: span-tree structure, null path, export."""

from __future__ import annotations

import json
import threading

from repro.obs.trace import NULL_SPAN, NULL_TRACE, Tracer


def _structure(trace) -> list[tuple]:
    """The determinism fingerprint: ids, parents, names — no timings."""
    return [(s.span_id, s.parent_id, s.name) for s in trace]


class TestSpanTree:
    def test_ids_count_from_one_in_creation_order(self):
        trace = Tracer().request(op="spmm", session="s", request_id=1)
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        trace.add_span("late", 0.0, 1.0)
        assert _structure(trace) == [
            (1, None, "outer"), (2, 1, "inner"), (3, None, "late"),
        ]

    def test_identical_flows_identical_structure(self):
        def flow():
            t = Tracer().request(op="spmm", session="s", request_id=9)
            with t.span("admission", queue_depth=0):
                pass
            with t.span("plan-resolution"):
                t.span("lookup").end()
            t.add_span("queue", 0.0, 0.5)
            t.add_span("kernel-launch", 0.5, 0.6, batch_id=1)
            return t

        a, b = flow(), flow()
        assert _structure(a) == _structure(b)
        # full dict form matches modulo wall timings
        def strip(d):
            return [
                {k: v for k, v in s.items()
                 if k not in ("start_s", "end_s", "wall_s")}
                for s in d["spans"]
            ]
        assert strip(a.to_dict()) == strip(b.to_dict())

    def test_cross_thread_spans_attach_at_root(self):
        trace = Tracer().request(op="spmm", session="s", request_id=1)
        with trace.span("outer"):
            worker_span = []
            t = threading.Thread(
                target=lambda: worker_span.append(trace.span("worker"))
            )
            t.start()
            t.join()
            worker_span[0].end()
        assert worker_span[0].parent_id is None  # not a child of "outer"

    def test_span_end_idempotent_and_wall(self):
        trace = Tracer().request(op="x", session="s", request_id=1)
        span = trace.span("a")
        assert span.wall_s == 0.0  # open
        span.end()
        first = span.end_s
        span.end()
        assert span.end_s == first
        assert span.wall_s == span.end_s - span.start_s >= 0.0

    def test_set_chains_and_attrs_sorted_in_dict(self):
        trace = Tracer().request(op="x", session="s", request_id=1)
        span = trace.span("a").set(z=1).set(b=2)
        span.end()
        assert list(span.to_dict()["attrs"]) == ["b", "z"]

    def test_find(self):
        trace = Tracer().request(op="x", session="s", request_id=1)
        trace.span("a").end()
        assert trace.find("a").name == "a"
        assert trace.find("missing") is None


class TestNullPath:
    def test_disabled_tracer_hands_out_the_falsy_singleton(self):
        tracer = Tracer(enabled=False)
        trace = tracer.request(op="spmm", session="s", request_id=1)
        assert trace is NULL_TRACE
        assert not trace and not NULL_SPAN

    def test_null_trace_is_a_complete_no_op(self):
        with NULL_TRACE.span("x", a=1) as span:
            assert span.set(b=2) is span
        assert NULL_TRACE.add_span("y", 0, 1) is NULL_SPAN
        assert NULL_TRACE.now() == 0.0
        assert NULL_TRACE.to_dict() is None

    def test_finishing_a_null_trace_keeps_the_buffer_empty(self):
        tracer = Tracer(enabled=False)
        tracer.finish(tracer.request(op="x", session="s", request_id=1))
        assert tracer.finished() == []


class TestTracer:
    def test_ring_buffer_keeps_most_recent(self):
        tracer = Tracer(keep=2)
        for i in range(1, 5):
            tracer.finish(tracer.request(op="x", session="s", request_id=i))
        assert [t.request_id for t in tracer.finished()] == [3, 4]

    def test_export_jsonl_one_sorted_line_per_trace(self, tmp_path):
        tracer = Tracer()
        for i in (1, 2):
            t = tracer.request(op="spmm", session="s", request_id=i)
            t.span("a").end()
            tracer.finish(t)
        path = tracer.export_jsonl(tmp_path / "traces.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["request_id"] == 1
        assert [s["name"] for s in first["spans"]] == ["a"]
        # deterministic serialization: keys sorted
        assert lines[0] == json.dumps(first, sort_keys=True)

    def test_export_empty_writes_empty_file(self, tmp_path):
        path = Tracer().export_jsonl(tmp_path / "none.jsonl")
        assert path.read_text() == ""
