"""MetricsRegistry: instruments, labels, persistence round-trip."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigError
from repro.obs import names
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS_S,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.names import STANDARD_METRICS, declare_standard


class TestInstruments:
    def test_counter_accumulates(self):
        r = MetricsRegistry()
        c = r.counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        assert r.counter("c") is c  # same child on re-access

    def test_counter_rejects_negative(self):
        with pytest.raises(ConfigError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_moves_both_ways(self):
        g = MetricsRegistry().gauge("g")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value == 4.0

    def test_kind_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(ConfigError):
            r.gauge("x")

    def test_labels_key_sorted_and_stringified(self):
        r = MetricsRegistry()
        a = r.counter("c", {"b": "2", "a": "1"})
        b = r.counter("c", {"a": 1, "b": 2})
        assert a is b
        (labels, child), = r.samples("c")
        assert labels == {"a": "1", "b": "2"} and child is a


class TestHistogram:
    def test_observe_and_bounds(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(105.0)
        assert h.counts == [1, 1, 1, 1]  # last is the +Inf overflow
        assert (h.min, h.max) == (0.5, 100.0)

    def test_quantile_interpolates_within_observed_range(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 0.6, 0.7, 3.9):
            h.observe(v)
        assert h.quantile(0.0) >= h.min
        assert h.quantile(1.0) == h.max
        assert h.min <= h.quantile(0.5) <= 1.0  # inside the first bucket

    def test_quantile_empty_and_invalid(self):
        h = MetricsRegistry().histogram("h")
        assert h.quantile(0.99) == 0.0
        with pytest.raises(ConfigError):
            h.quantile(1.5)

    def test_default_buckets_are_time_shaped(self):
        h = MetricsRegistry().histogram("h")
        assert h.buckets == DEFAULT_TIME_BUCKETS_S
        assert len(h.counts) == len(h.buckets) + 1

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ConfigError):
            MetricsRegistry().histogram("h", buckets=(2.0, 1.0))

    def test_memory_constant_under_load(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        for i in range(10_000):
            h.observe(i % 3)
        assert len(h.counts) == 3
        assert h.count == 10_000


class TestRoundTrip:
    def test_to_from_dict_identical(self):
        r = MetricsRegistry()
        declare_standard(r)
        r.counter(names.REQUESTS, {"session": "s"}).inc(7)
        r.gauge(names.QUEUE_DEPTH, {"session": "s"}).set(3)
        r.histogram(names.BATCH_SIZE).observe(4)
        r.histogram(names.REQUEST_WALL).observe(0.01)
        restored = MetricsRegistry.from_dict(r.to_dict())
        assert restored.to_dict() == r.to_dict()

    def test_round_trip_preserves_custom_buckets(self):
        # regression: restoring a snapshot must not reset a family's
        # bucket layout to the time default
        r = MetricsRegistry()
        h = r.histogram("sizes", buckets=(1.0, 8.0, 64.0))
        h.observe(5)
        h2 = MetricsRegistry.from_dict(r.to_dict()).histogram("sizes")
        assert h2.buckets == (1.0, 8.0, 64.0)
        assert h2.quantile(0.5) == h.quantile(0.5)

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ConfigError):
            MetricsRegistry.from_dict({"x": {"kind": "summary", "samples": []}})

    def test_empty_histogram_min_max_survive(self):
        r = MetricsRegistry()
        r.histogram("h")
        h = MetricsRegistry.from_dict(r.to_dict()).histogram("h")
        assert h.count == 0 and h.min == math.inf


class TestStandardContract:
    def test_declare_standard_names_everything(self):
        r = declare_standard(MetricsRegistry())
        assert r.names() == sorted(m[0] for m in STANDARD_METRICS)

    def test_standard_metric_conventions(self):
        for name, kind, help_line, _ in STANDARD_METRICS:
            assert name.startswith("repro_")
            assert help_line.strip()
            if kind == "counter":
                assert name.endswith("_total")
            if name.endswith("_seconds"):
                assert kind == "histogram"

    def test_global_registry_swap(self):
        fresh = MetricsRegistry()
        old = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(old)
        assert get_registry() is old
