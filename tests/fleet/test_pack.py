"""Fleet packs: build, load, fingerprint, integrity verification."""

import pytest

from repro.autotune import ArtifactManifest, SweepConfig, run_sweep, write_artifact
from repro.errors import FleetError
from repro.fleet.pack import FleetPack, build_pack


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """Two small swept plan-cache artifacts (with manifests)."""
    root = tmp_path_factory.mktemp("artifacts")
    paths = []
    for stem, shape in (("spmm-a", (64, 64, 32)), ("spmm-b", (64, 64, 64))):
        config = SweepConfig(
            ops=("spmm",),
            shapes=(shape,),
            vector_lengths=(8,),
            sparsities=(0.7,),
            devices=("A100",),
            backends=("magicube-emulation",),
            min_bits=((8, 8),),
        )
        report = run_sweep(config, warmup=0, repeats=1, prune_ratio=None)
        path = root / f"{stem}.json"
        write_artifact(path, report.cache, ArtifactManifest.for_report(report))
        paths.append(path)
    return paths


class TestBuild:
    def test_round_trip(self, artifacts, tmp_path):
        pack = build_pack(artifacts, tmp_path / "pack", version="v7")
        loaded = FleetPack.load(tmp_path / "pack")
        assert loaded.version == "v7"
        assert loaded.fingerprint == pack.fingerprint
        assert loaded.plan_count == pack.plan_count > 0
        assert [m.name for m in loaded.members] == ["spmm-a", "spmm-b"]
        assert loaded.verify() == []
        for p in loaded.plan_paths():
            assert p.exists()

    def test_fingerprint_is_content_addressed(self, artifacts, tmp_path):
        a = build_pack(artifacts, tmp_path / "a")
        b = build_pack(artifacts, tmp_path / "b")
        assert a.fingerprint == b.fingerprint  # same members, same identity

    def test_single_member_changes_fingerprint(self, artifacts, tmp_path):
        both = build_pack(artifacts, tmp_path / "both")
        one = build_pack(artifacts[:1], tmp_path / "one")
        assert both.fingerprint != one.fingerprint

    def test_duplicate_stems_rejected(self, artifacts, tmp_path):
        with pytest.raises(FleetError, match="duplicate"):
            build_pack([artifacts[0], artifacts[0]], tmp_path / "dup")

    def test_empty_build_rejected(self, tmp_path):
        with pytest.raises(FleetError, match="at least one"):
            build_pack([], tmp_path / "empty")

    def test_non_artifact_input_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{not json")
        with pytest.raises(FleetError, match="cannot pack"):
            build_pack([bogus], tmp_path / "pack")


class TestIntegrity:
    def test_corrupt_member_is_named_by_verify(self, artifacts, tmp_path):
        build_pack(artifacts, tmp_path / "pack")
        victim = tmp_path / "pack" / "spmm-a.json"
        victim.write_text(victim.read_text() + "\n")
        problems = FleetPack.load(tmp_path / "pack").verify()
        assert len(problems) == 1
        assert "spmm-a" in problems[0] and "digest" in problems[0]

    def test_missing_member_is_named_by_verify(self, artifacts, tmp_path):
        build_pack(artifacts, tmp_path / "pack")
        (tmp_path / "pack" / "spmm-b.json").unlink()
        problems = FleetPack.load(tmp_path / "pack").verify()
        assert any("spmm-b" in p and "missing" in p for p in problems)

    def test_tampered_manifest_fingerprint_fails_load(self, artifacts, tmp_path):
        import json

        build_pack(artifacts, tmp_path / "pack")
        manifest = tmp_path / "pack" / "pack.json"
        doc = json.loads(manifest.read_text())
        doc["fingerprint"] = "0" * 12
        manifest.write_text(json.dumps(doc))
        with pytest.raises(FleetError, match="fingerprint mismatch"):
            FleetPack.load(tmp_path / "pack")

    def test_unsupported_schema_fails_load(self, artifacts, tmp_path):
        import json

        build_pack(artifacts, tmp_path / "pack")
        manifest = tmp_path / "pack" / "pack.json"
        doc = json.loads(manifest.read_text())
        doc["schema"] = 99
        manifest.write_text(json.dumps(doc))
        with pytest.raises(FleetError, match="schema"):
            FleetPack.load(tmp_path / "pack")
