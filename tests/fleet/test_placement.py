"""Consistent-hash placement: determinism, spread, minimal movement."""

import pytest

from repro.errors import FleetError
from repro.fleet.placement import PlacementRing

KEYS = [f"session-{i}" for i in range(300)]


class TestDeterminism:
    def test_same_workers_same_placement(self):
        a = PlacementRing(["w0", "w1", "w2"])
        b = PlacementRing(["w2", "w0", "w1"])  # insertion order is irrelevant
        assert [a.lookup(k) for k in KEYS] == [b.lookup(k) for k in KEYS]

    def test_lookup_is_stable_across_calls(self):
        ring = PlacementRing(["w0", "w1"])
        assert all(ring.lookup(k) == ring.lookup(k) for k in KEYS)

    def test_assignments_matches_lookup(self):
        ring = PlacementRing(["w0", "w1", "w2"])
        assigned = ring.assignments(KEYS)
        assert assigned == {k: ring.lookup(k) for k in KEYS}


class TestSpread:
    def test_every_worker_owns_traffic(self):
        ring = PlacementRing(["w0", "w1", "w2", "w3"])
        owners = {ring.lookup(k) for k in KEYS}
        assert owners == {"w0", "w1", "w2", "w3"}

    def test_no_worker_owns_almost_everything(self):
        ring = PlacementRing(["w0", "w1", "w2", "w3"])
        counts = {w: 0 for w in ring.workers}
        for k in KEYS:
            counts[ring.lookup(k)] += 1
        # perfect would be 75 each; vnodes keep the spread reasonable
        assert max(counts.values()) < len(KEYS) * 0.6


class TestMinimalMovement:
    def test_adding_a_worker_only_moves_keys_to_it(self):
        before = PlacementRing(["w0", "w1", "w2"])
        old = {k: before.lookup(k) for k in KEYS}
        before.add("w3")
        moved = {k for k in KEYS if before.lookup(k) != old[k]}
        # the defining consistent-hash property: every moved key moved
        # *to* the new worker, nothing reshuffled between survivors
        assert moved, "a new worker should take over some sessions"
        assert all(before.lookup(k) == "w3" for k in moved)
        assert len(moved) < len(KEYS) * 0.5

    def test_removing_a_worker_only_moves_its_keys(self):
        ring = PlacementRing(["w0", "w1", "w2", "w3"])
        old = {k: ring.lookup(k) for k in KEYS}
        ring.remove("w1")
        for k in KEYS:
            if old[k] == "w1":
                assert ring.lookup(k) != "w1"
            else:
                assert ring.lookup(k) == old[k]

    def test_exclude_equals_removal_without_rebuilding(self):
        """Routing around a dead worker lands exactly where a ring
        without it would - so sessions come home when it respawns."""
        full = PlacementRing(["w0", "w1", "w2"])
        reduced = PlacementRing(["w0", "w2"])
        for k in KEYS:
            assert full.lookup(k, exclude=frozenset({"w1"})) == reduced.lookup(k)


class TestEdges:
    def test_empty_ring_raises(self):
        with pytest.raises(FleetError):
            PlacementRing([]).lookup("s")

    def test_all_excluded_raises(self):
        ring = PlacementRing(["w0", "w1"])
        with pytest.raises(FleetError):
            ring.lookup("s", exclude=frozenset({"w0", "w1"}))

    def test_membership_protocol(self):
        ring = PlacementRing(["w0"])
        assert "w0" in ring and "w1" not in ring
        assert len(ring) == 1
        ring.add("w1")
        assert len(ring) == 2 and ring.workers == ["w0", "w1"]
