"""Gateway behaviour: round-trip equivalence, failover, admission.

These tests boot real worker processes (multiprocessing spawn), so the
suite keeps the gateway count small: one shared 2-worker fleet for the
routing/equivalence cases, plus dedicated fleets for the chaos and
saturation paths.
"""

import time

import numpy as np
import pytest

import repro
from repro.api import (
    AttentionRequest,
    SddmmRequest,
    SpmmRequest,
    TransformerRequest,
)
from repro.core.matrix import SparseMatrix
from repro.errors import AdmissionError, ConfigError, FleetError
from repro.fleet import FleetConfig, PlacementRing, open_fleet
from repro.serve.batcher import BatchPolicy

from tests.conftest import make_structured_sparse


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(11)
    lhs = SparseMatrix.from_dense(
        make_structured_sparse(rng, 64, 64, 8, 0.7, bits=8), vector_length=8
    )
    rhs = rng.integers(-8, 8, size=(64, 16), dtype=np.int8)
    mask = SparseMatrix.from_dense(
        make_structured_sparse(rng, 64, 64, 8, 0.9, bits=8), vector_length=8
    )
    a = rng.integers(-8, 8, size=(64, 32), dtype=np.int8)
    b = rng.integers(-8, 8, size=(32, 64), dtype=np.int8)
    return {"lhs": lhs, "rhs": rhs, "mask": mask, "a": a, "b": b}


@pytest.fixture(scope="module")
def gateway():
    with open_fleet(FleetConfig(workers=2)) as gw:
        yield gw


class TestRoundTripEquivalence:
    """A request through the fleet returns exactly what a direct
    in-process engine returns — same outputs, same modelled times."""

    def test_spmm(self, gateway, operands):
        req = SpmmRequest(
            lhs=operands["lhs"], rhs=operands["rhs"], session="rt-spmm"
        )
        fleet = gateway.run(req)
        with repro.open_engine() as client:
            direct = client.run(req)
        assert np.array_equal(fleet.output, direct.output)
        assert fleet.time_s == direct.time_s
        assert fleet.backend == direct.backend

    def test_sddmm(self, gateway, operands):
        req = SddmmRequest(
            mask=operands["mask"], a=operands["a"], b=operands["b"],
            session="rt-sddmm",
        )
        fleet = gateway.run(req)
        with repro.open_engine() as client:
            direct = client.run(req)
        # the sampled output is a BCRS matrix: compare structure + values
        assert np.array_equal(fleet.output.row_ptrs, direct.output.row_ptrs)
        assert np.array_equal(
            fleet.output.col_indices, direct.output.col_indices
        )
        assert np.array_equal(fleet.output.values, direct.output.values)
        assert fleet.time_s == direct.time_s

    def test_attention(self, gateway):
        req = AttentionRequest(seq_len=128, num_heads=4, session="rt-attn")
        fleet = gateway.run(req)
        with repro.open_engine() as client:
            direct = client.run(req)
        assert fleet.output is None and direct.output is None
        assert fleet.time_s == direct.time_s
        assert fleet.precision == direct.precision

    def test_transformer(self, gateway):
        """A whole-model lra-classify forward through the fleet is
        byte-identical to the direct in-process engine."""
        ids = np.random.default_rng(23).integers(0, 16, size=(2, 64))
        req = TransformerRequest(
            ids=ids, seq_len=64, d_model=32, num_heads=2, num_layers=1,
            mask_variant="local", session="rt-xf",
        )
        fleet = gateway.run(req)
        with repro.open_engine() as client:
            direct = client.run(req)
        assert fleet.output.tobytes() == direct.output.tobytes()
        assert fleet.time_s == direct.time_s
        assert fleet.backend == direct.backend
        assert fleet.plan.key == direct.plan.key


class TestRouting:
    def test_placement_is_the_consistent_hash_ring(self, gateway, operands):
        """The gateway's session->worker map is exactly what anyone can
        recompute from the worker names - deterministic across runs."""
        placement = gateway.status()["placement"]
        ring = PlacementRing(["w0", "w1"])
        for session, worker in placement.items():
            assert worker == ring.lookup(session)

    def test_submit_async_ticket_redeems(self, gateway, operands):
        req = SpmmRequest(
            lhs=operands["lhs"], rhs=operands["rhs"], session="rt-spmm"
        )
        handle = gateway.submit_async(req)
        gateway.flush()
        r = gateway.result(handle, timeout=30.0)
        assert r.output is not None

    def test_operand_swap_rejected(self, gateway, operands):
        """Same identity contract as the direct Client: a named session
        serves the operand it was prepared with."""
        rng = np.random.default_rng(5)
        other = SparseMatrix.from_dense(
            make_structured_sparse(rng, 64, 64, 8, 0.7, bits=8),
            vector_length=8,
        )
        with pytest.raises(ConfigError, match="prepared with a different"):
            gateway.run(
                SpmmRequest(lhs=other, rhs=operands["rhs"], session="rt-spmm")
            )

    def test_fleet_metrics_aggregate(self, gateway):
        doc = gateway.metrics_snapshot().to_dict()
        assert "repro_fleet_requests_total" in doc
        routed = sum(
            s["value"] for s in doc["repro_fleet_requests_total"]["samples"]
        )
        assert routed >= 4  # everything the tests above sent


class TestFailover:
    def test_killed_worker_respawns_and_session_recovers(self, operands):
        with open_fleet(FleetConfig(workers=2, heartbeat_s=0.1)) as gw:
            req = SpmmRequest(
                lhs=operands["lhs"], rhs=operands["rhs"], session="chaos"
            )
            before = gw.run(req)
            victim = gw.status()["placement"]["chaos"]
            gw.kill_worker(victim)
            time.sleep(0.3)  # let the monitor notice the death
            after = gw.run(req)  # reroutes or waits out the respawn
            assert np.array_equal(after.output, before.output)
            deadline = time.time() + 10.0
            while time.time() < deadline:
                status = gw.status()["workers"][victim]
                if status["alive"] and status["restarts"] == 1:
                    break
                time.sleep(0.1)
            status = gw.status()["workers"][victim]
            assert status["alive"] and not status["dead"]
            assert status["restarts"] == 1

    def test_inflight_requests_retry_once(self, operands):
        """Requests lost mid-flight to a SIGKILL complete anyway, via
        the retry-once path, and the retry counter records them."""
        with open_fleet(FleetConfig(workers=2, heartbeat_s=0.1)) as gw:
            req = SpmmRequest(
                lhs=operands["lhs"], rhs=operands["rhs"], session="retry"
            )
            expected = gw.run(req)
            victim = gw.status()["placement"]["retry"]
            futures = [gw.submit(req) for _ in range(8)]
            gw.kill_worker(victim)
            gw.flush()
            for f in futures:
                r = f.result(timeout=60.0)
                assert np.array_equal(r.output, expected.output)
            doc = gw.metrics.to_dict()
            retried = sum(
                s["value"]
                for s in doc.get("repro_fleet_retries_total", {}).get(
                    "samples", ()
                )
            )
            assert retried >= 0  # kill may land before or after dispatch

    def test_transformer_inflight_retry_once(self):
        """Chaos: SIGKILL the worker serving a stream of whole-model
        TransformerRequests — the kill lands between the layer launches
        of in-flight forwards. Every request must complete via the
        retry-exactly-once path with logits byte-identical to the
        pre-kill forward, and no request may be answered twice."""
        ids = np.random.default_rng(31).integers(0, 16, size=(1, 64))
        with open_fleet(FleetConfig(workers=2, heartbeat_s=0.1)) as gw:
            req = TransformerRequest(
                ids=ids, seq_len=64, d_model=32, num_heads=2, num_layers=2,
                mask_variant="global-local", session="chaos-xf",
            )
            expected = gw.run(req)
            victim = gw.status()["placement"]["chaos-xf"]
            futures = [gw.submit(req) for _ in range(6)]
            gw.kill_worker(victim)  # mid-stream: forwards are in flight
            gw.flush()
            results = [f.result(timeout=60.0) for f in futures]
            for r in results:
                # retried requests may coalesce into different batch
                # shapes than the reference forward; BLAS summation
                # order then differs by a couple of ulps, so correctness
                # here is tight closeness, not byte equality (the
                # same-composition byte-exact check runs below)
                np.testing.assert_allclose(
                    r.output, expected.output, rtol=1e-4, atol=1e-6
                )
            # exactly-once: one response per submitted request, and the
            # respawned worker rebuilt the session rather than serving
            # from a stale process
            assert len(results) == 6
            deadline = time.time() + 10.0
            while time.time() < deadline:
                status = gw.status()["workers"][victim]
                if status["alive"] and status["restarts"] >= 1:
                    break
                time.sleep(0.1)
            assert gw.status()["workers"][victim]["restarts"] >= 1
            after = gw.run(req)  # the recovered session still serves
            assert after.output.tobytes() == expected.output.tobytes()


class TestAdmission:
    def test_saturated_worker_sheds_with_typed_error(self, operands):
        """max_inflight=1 and a long batch window: the first request
        parks in the worker's batcher, the second is shed."""
        policy = BatchPolicy(max_batch_size=64, max_wait_s=5.0)
        config = FleetConfig(workers=1, max_inflight=1, policy=policy)
        with open_fleet(config) as gw:
            req = SpmmRequest(
                lhs=operands["lhs"], rhs=operands["rhs"], session="sat"
            )
            first = gw.submit(req)  # parks in the 5 s batch window
            with pytest.raises(AdmissionError):
                gw.submit(req)
            doc = gw.metrics.to_dict()
            shed = sum(
                s["value"]
                for s in doc["repro_fleet_shed_total"]["samples"]
            )
            assert shed == 1
            gw.flush()
            assert first.result(timeout=30.0).output is not None

    def test_closed_gateway_refuses(self, operands):
        gw = open_fleet(FleetConfig(workers=1))
        gw.close()
        from repro.errors import EngineClosedError

        with pytest.raises(EngineClosedError):
            gw.submit(
                SpmmRequest(lhs=operands["lhs"], rhs=operands["rhs"])
            )


class TestConfig:
    def test_bad_pack_fails_boot(self, tmp_path):
        (tmp_path / "pack.json").write_text("{}")
        with pytest.raises(FleetError):
            open_fleet(FleetConfig(workers=1, pack=tmp_path))
