"""Failure-injection tests: corrupted inputs must be rejected, not
silently mis-computed.

The CUDA kernels the paper ships would read garbage on these inputs;
the library's contract is to catch them at the Python boundary.
"""

import numpy as np
import pytest

from repro.errors import FormatError, PrecisionError, ShapeError
from repro.formats import SRBCRSMatrix, dense_to_bcrs, dense_to_srbcrs
from repro.formats.srbcrs import PAD_INDEX
from repro.formats.validate import validate_bcrs, validate_srbcrs
from repro.kernels import MagicubeSDDMM, MagicubeSpMM, SDDMMConfig, SpMMConfig
from tests.conftest import make_structured_sparse


def corrupt_srbcrs(m: SRBCRSMatrix, **overrides) -> SRBCRSMatrix:
    fields = dict(
        shape=m.shape,
        vector_length=m.vector_length,
        stride=m.stride,
        row_starts=m.row_starts,
        row_ends=m.row_ends,
        col_indices=m.col_indices,
        values=m.values,
    )
    fields.update(overrides)
    return SRBCRSMatrix(**fields)


class TestCorruptedFormats:
    def test_sentinel_in_valid_region_detected(self, rng):
        d = make_structured_sparse(rng, 16, 64, 8, 0.5)
        m = dense_to_srbcrs(d, 8, 16)
        bad_cols = m.col_indices.copy()
        first_valid = int(np.argmax(bad_cols != PAD_INDEX))
        bad_cols[first_valid] = PAD_INDEX
        bad = corrupt_srbcrs(m, col_indices=bad_cols)
        with pytest.raises(FormatError):
            validate_srbcrs(bad)

    def test_nonzero_padding_values_detected(self, rng):
        d = make_structured_sparse(rng, 16, 64, 8, 0.3)
        m = dense_to_srbcrs(d, 8, 16)
        pads = np.nonzero(m.col_indices == PAD_INDEX)[0]
        if pads.size == 0:
            pytest.skip("no padding in this draw")
        vals = m.values.copy()
        # values are stride-group row-major: padded slot j sits in column
        # (j % stride) of its group's (V, stride) tile
        slot = int(pads[0])
        group, offset = divmod(slot, m.stride)
        vals[group * m.vector_length * m.stride + offset] = 1  # poison row 0
        with pytest.raises(FormatError):
            validate_srbcrs(corrupt_srbcrs(m, values=vals))

    def test_row_end_before_start_rejected(self, rng):
        d = make_structured_sparse(rng, 16, 64, 8, 0.5)
        m = dense_to_srbcrs(d, 8, 16)
        ends = m.row_ends.copy()
        ends[0] = m.row_starts[0] - 1
        with pytest.raises(FormatError):
            corrupt_srbcrs(m, row_ends=ends)

    def test_duplicate_mask_columns_detected(self, rng):
        d = make_structured_sparse(rng, 16, 64, 8, 0.5)
        m = dense_to_bcrs(d, 8)
        if m.num_vectors < 2:
            pytest.skip("too few vectors")
        cols = m.col_indices.copy()
        cols[1] = cols[0]
        bad = type(m)(
            shape=m.shape,
            vector_length=m.vector_length,
            row_ptrs=m.row_ptrs,
            col_indices=cols,
            values=m.values,
        )
        with pytest.raises(FormatError):
            validate_bcrs(bad)


class TestKernelInputGuards:
    def test_spmm_rejects_overflowing_lhs(self, rng):
        kern = MagicubeSpMM(SpMMConfig(l_bits=8, r_bits=8))
        d = make_structured_sparse(rng, 16, 32, 8, 0.5).astype(np.int64)
        d[0, np.argmax(d[0] != 0)] = 1000  # outside int8
        lhs = dense_to_srbcrs(d, 8, 16)
        with pytest.raises(PrecisionError):
            kern(lhs, rng.integers(-128, 128, size=(32, 8)))

    def test_spmm_rejects_float_rhs_out_of_range(self, rng):
        kern = MagicubeSpMM(SpMMConfig(l_bits=8, r_bits=4))
        d = make_structured_sparse(rng, 16, 32, 8, 0.5)
        lhs = dense_to_srbcrs(d, 8, 32)
        with pytest.raises(PrecisionError):
            kern(lhs, np.full((32, 8), 100))

    def test_sddmm_rejects_transposed_b(self, rng):
        kern = MagicubeSDDMM(SDDMMConfig())
        a = rng.integers(-8, 8, size=(16, 32))
        b_wrong = rng.integers(-8, 8, size=(16, 32))  # should be (32, n)
        mask = dense_to_bcrs(
            (make_structured_sparse(rng, 16, 32, 8, 0.5) != 0).astype(np.int32), 8
        )
        with pytest.raises(ShapeError):
            kern(a, b_wrong, mask)

    def test_unsigned_config_rejects_negative_lhs(self, rng):
        kern = MagicubeSpMM(SpMMConfig(l_bits=8, r_bits=8, l_signed=False))
        d = make_structured_sparse(rng, 16, 32, 8, 0.5)  # signed values
        if d.min() >= 0:
            d[0, np.argmax(d[0] != 0)] = -5
        lhs = dense_to_srbcrs(d, 8, 16)
        with pytest.raises(PrecisionError):
            kern(lhs, rng.integers(-128, 128, size=(32, 8)))
