"""Cross-module integration tests: the full attention kernel chain."""

import numpy as np
import pytest

from repro.formats import dense_to_bcrs
from repro.formats.convert import bcrs_to_srbcrs
from repro.kernels import MagicubeSDDMM, MagicubeSpMM, SDDMMConfig, SpMMConfig
from repro.kernels.softmax import sparse_softmax_quantized
from repro.lowp.quantize import symmetric_quantize
from repro.transformer.layers import softmax
from tests.conftest import make_structured_sparse


class TestAttentionChain:
    """SDDMM -> softmax -> SpMM with format handoff, vs NumPy."""

    def test_full_chain(self, rng):
        L, dh = 32, 64
        q = rng.normal(size=(L, dh)).astype(np.float32)
        k = rng.normal(size=(L, dh)).astype(np.float32)
        v = rng.normal(size=(L, dh)).astype(np.float32)
        mask_dense = (make_structured_sparse(rng, L, L, 8, 0.4) != 0).astype(np.int32)
        mask = dense_to_bcrs(mask_dense, 8)

        # quantize inputs
        qq, qp = symmetric_quantize(q, 8)
        kq, kp = symmetric_quantize(k, 8)
        vq, vp = symmetric_quantize(v, 8)

        # 1. integer SDDMM (scores sampled at the mask)
        sddmm = MagicubeSDDMM(SDDMMConfig(l_bits=8, r_bits=8))
        scores = sddmm(qq, kq.T, mask).output

        # 2. fp16 softmax with fused quantization (unsigned 16-bit out)
        scale = qp.scale * kp.scale / np.sqrt(dh)
        sm = sparse_softmax_quantized(scores, scale=scale, out_bits=16)

        # 3. integer SpMM with the SR-BCRS handoff and fused dequant
        spmm = MagicubeSpMM(SpMMConfig(l_bits=16, r_bits=8, l_signed=False))
        probs_sr = bcrs_to_srbcrs(sm.output, stride=spmm.required_stride)
        ctx = spmm(probs_sr, vq, scale=sm.params.scale * vp.scale).dequantized

        # NumPy reference: float masked attention
        logits = (q @ k.T) / np.sqrt(dh)
        logits = np.where(mask_dense != 0, logits, -np.inf)
        ref = softmax(logits, axis=-1) @ v
        rel = np.abs(ctx - ref).mean() / np.abs(ref).mean()
        assert rel < 0.08  # int8 QK + 16-bit softmax quantization noise

    def test_sddmm_srbcrs_output_feeds_spmm_directly(self, rng):
        """The paper's format choice: SDDMM can emit SR-BCRS when an
        SpMM follows, skipping the conversion."""
        L, dh = 16, 32
        a = rng.integers(-64, 64, size=(L, dh))
        b = rng.integers(-64, 64, size=(dh, L))
        mask_dense = (make_structured_sparse(rng, L, L, 8, 0.4) != 0).astype(np.int32)
        mask = dense_to_bcrs(mask_dense, 8)
        res = MagicubeSDDMM(SDDMMConfig(l_bits=8, r_bits=8, output_format="srbcrs"))(
            a, b, mask
        )
        # the scores fit int8? not generally — rescale into range
        scores = res.output
        vals = np.clip(scores.values // 512, -128, 127)
        scores = type(scores)(
            shape=scores.shape,
            vector_length=scores.vector_length,
            stride=scores.stride,
            row_starts=scores.row_starts,
            row_ends=scores.row_ends,
            col_indices=scores.col_indices,
            values=vals,
        )
        rhs = rng.integers(-128, 128, size=(L, dh))
        out = MagicubeSpMM(SpMMConfig(l_bits=8, r_bits=8))(scores, rhs).output
        ref = scores.to_dense().astype(np.int64) @ rhs
        np.testing.assert_array_equal(out, ref)


class TestCrossLibraryConsistency:
    """All libraries compute the same (numerically compatible) product."""

    def test_int8_libraries_agree(self, rng):
        from repro.baselines import CublasGemm, CusparseBlockedEllSpMM
        from repro.formats import dense_to_blocked_ell, dense_to_srbcrs

        d = make_structured_sparse(rng, 32, 64, 8, 0.7)
        rhs = rng.integers(-128, 128, size=(64, 32))
        ref = d.astype(np.int64) @ rhs

        magicube = MagicubeSpMM(SpMMConfig(l_bits=8, r_bits=8))(
            dense_to_srbcrs(d, 8, 16), rhs
        ).output
        cublas = CublasGemm("int8")(d, rhs).output
        bell = CusparseBlockedEllSpMM("int8")(dense_to_blocked_ell(d, 8), rhs).output
        np.testing.assert_array_equal(magicube, ref)
        np.testing.assert_array_equal(cublas, ref)
        np.testing.assert_array_equal(bell, ref)

    def test_fp16_libraries_close(self, rng):
        from repro.baselines import SputnikSpMM, VectorSparseSpMM
        from repro.formats import dense_to_bcrs, dense_to_csr

        d = make_structured_sparse(rng, 32, 64, 8, 0.7).astype(np.float32)
        rhs = rng.normal(size=(64, 16)).astype(np.float32)
        ref = d @ rhs
        vs = VectorSparseSpMM()(dense_to_bcrs(d, 8), rhs).output
        sp = SputnikSpMM("fp32")(dense_to_csr(d), rhs).output
        np.testing.assert_allclose(vs, ref, rtol=1e-2, atol=1.0)
        np.testing.assert_allclose(sp, ref, rtol=1e-5, atol=1e-3)


class TestVariantEquivalence:
    """Every Fig. 11 ablation variant computes the identical result."""

    @pytest.mark.parametrize("l,r", [(8, 8), (4, 4)])
    def test_all_variants_equal(self, rng, l, r):
        from repro.bench.figures import ABLATION_VARIANTS
        from repro.formats import dense_to_srbcrs

        d = make_structured_sparse(rng, 32, 64, 8, 0.6, bits=l)
        kern0 = MagicubeSpMM(SpMMConfig(l_bits=l, r_bits=r))
        lhs = dense_to_srbcrs(d, 8, kern0.required_stride)
        rhs = rng.integers(-(1 << (r - 1)), 1 << (r - 1), size=(64, 32))
        outputs = []
        for _, knobs in ABLATION_VARIANTS:
            kern = MagicubeSpMM(SpMMConfig(l_bits=l, r_bits=r, **knobs))
            outputs.append(kern(lhs, rhs).output)
        for out in outputs[1:]:
            np.testing.assert_array_equal(out, outputs[0])


class TestStatsInvariants:
    def test_useful_never_exceeds_issued(self, rng):
        """Padding/emulation only add work: useful <= issued MMA ops."""
        from repro.formats import dense_to_srbcrs

        for l, r in ((8, 8), (16, 8), (4, 4), (16, 4)):
            kern = MagicubeSpMM(SpMMConfig(l_bits=l, r_bits=r))
            d = make_structured_sparse(rng, 32, 64, 8, 0.7, bits=min(l, 8))
            lhs = dense_to_srbcrs(d, 8, kern.required_stride)
            rhs = rng.integers(-(1 << (r - 1)), 1 << (r - 1), size=(64, 64))
            stats = kern(lhs, rhs).stats
            assert stats.useful_ops <= stats.total_mma_ops

    def test_unique_traffic_never_exceeds_access(self, rng):
        from repro.formats import dense_to_srbcrs

        kern = MagicubeSpMM(SpMMConfig())
        d = make_structured_sparse(rng, 32, 64, 8, 0.5)
        stats = kern(dense_to_srbcrs(d, 8, 16), rng.integers(-128, 128, (64, 128))).stats
        t = stats.traffic
        assert t.unique_read_bytes <= t.read_bytes
