"""Tests for the synthetic DLMC collection."""

import numpy as np
import pytest

from repro.dlmc import (
    SPARSITIES,
    VECTOR_LENGTHS,
    MatrixSpec,
    dilate_pattern,
    dlmc_collection,
    generate_matrix,
    generate_pattern,
)
from repro.dlmc.dataset import full_grid
from repro.dlmc.generator import generate_blocked_ell
from repro.errors import ConfigError


class TestSpecs:
    def test_bad_model(self):
        with pytest.raises(ConfigError):
            MatrixSpec("vgg", 64, 64, 0.5, 0)

    def test_bad_sparsity(self):
        with pytest.raises(ConfigError):
            MatrixSpec("rn50", 64, 64, 1.0, 0)

    def test_name(self):
        s = MatrixSpec("rn50", 256, 2304, 0.9, 7)
        assert s.name == "rn50_256x2304_s0.9_7"


class TestPattern:
    def test_sparsity_near_target(self):
        spec = MatrixSpec("rn50", 512, 1024, 0.9, 3)
        p = generate_pattern(spec)
        assert abs((1 - p.mean()) - 0.9) < 0.03

    def test_deterministic(self):
        spec = MatrixSpec("rn50", 64, 128, 0.7, 5)
        np.testing.assert_array_equal(generate_pattern(spec), generate_pattern(spec))

    def test_row_imbalance_present(self):
        spec = MatrixSpec("rn50", 256, 2048, 0.9, 9)
        counts = generate_pattern(spec).sum(axis=1)
        assert counts.std() > 0  # lognormal spread

    def test_no_empty_rows(self):
        spec = MatrixSpec("rn50", 128, 256, 0.98, 11)
        assert generate_pattern(spec).sum(axis=1).min() >= 1


class TestDilation:
    @pytest.mark.parametrize("v", VECTOR_LENGTHS)
    def test_shape_independent_of_v(self, v):
        """Paper Fig. 11: the same M x K matrix at every V."""
        spec = MatrixSpec("rn50", 256, 512, 0.7, 1)
        m = generate_matrix(spec, v)
        assert m.shape == (256, 512)

    @pytest.mark.parametrize("v", VECTOR_LENGTHS)
    def test_vector_structure(self, v):
        """Nonzeros lie inside the dilated pattern, and every pattern
        vector survives with at least one nonzero element."""
        spec = MatrixSpec("rn50", 64, 128, 0.8, 2)
        m = generate_matrix(spec, v)
        pattern = generate_pattern(spec, rows=64 // v)
        dilated = dilate_pattern(pattern, v)
        assert not np.any((m != 0) & ~dilated)
        kept = (m != 0).reshape(64 // v, v, 128).any(axis=1)
        np.testing.assert_array_equal(kept, pattern)

    def test_sparsity_preserved(self):
        spec = MatrixSpec("rn50", 512, 1024, 0.9, 3)
        m = generate_matrix(spec, 8)
        assert abs((m == 0).mean() - 0.9) < 0.03

    def test_values_in_bits_range(self):
        spec = MatrixSpec("rn50", 64, 64, 0.5, 4)
        m4 = generate_matrix(spec, 4, bits=4)
        assert m4.min() >= -8 and m4.max() <= 7

    def test_dilate_pattern_repeats_rows(self):
        p = np.array([[True, False], [False, True]])
        d = dilate_pattern(p, 2)
        np.testing.assert_array_equal(d, [[1, 0], [1, 0], [0, 1], [0, 1]])

    def test_dilate_bad_v(self):
        with pytest.raises(ConfigError):
            dilate_pattern(np.ones((2, 2), dtype=bool), 9)

    def test_rows_must_divide(self):
        spec = MatrixSpec("rn50", 100, 64, 0.5, 5)
        with pytest.raises(ConfigError):
            generate_matrix(spec, 8)


class TestCollection:
    def test_count(self):
        specs = dlmc_collection(0.9, count=32)
        assert len(specs) == 32
        assert all(s.sparsity == 0.9 for s in specs)

    def test_full_grid_is_1536(self):
        grid = full_grid(count=256)
        assert sum(len(v) for v in grid.values()) == 1536
        assert set(grid) == set(SPARSITIES)

    def test_deterministic(self):
        a = dlmc_collection(0.7, count=8)
        b = dlmc_collection(0.7, count=8)
        assert [s.seed for s in a] == [s.seed for s in b]

    def test_shape_families_present(self):
        specs = dlmc_collection(0.5, count=32)
        models = {s.model for s in specs}
        assert models == {"rn50", "transformer"}

    def test_bad_sparsity(self):
        with pytest.raises(ValueError):
            dlmc_collection(0.42)


class TestBlockedEllGenerator:
    def test_block_structure(self):
        spec = MatrixSpec("rn50", 64, 128, 0.8, 6)
        m = generate_blocked_ell(spec, block_size=8)
        tiles = (m != 0).reshape(8, 8, 16, 8).swapaxes(1, 2).reshape(8, 16, -1)
        density = tiles.mean(axis=2)
        # every tile is either empty or a dense block (random int8 values
        # hit 0 with probability 1/256, so "dense" means > 90% nonzero)
        assert np.all((density == 0) | (density > 0.9))

    def test_sparsity_near_target(self):
        spec = MatrixSpec("rn50", 512, 2048, 0.9, 7)
        m = generate_blocked_ell(spec, block_size=8)
        assert abs((m == 0).mean() - 0.9) < 0.05
