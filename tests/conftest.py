"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "legacy: exercises deprecated pre-v1 API surfaces (kwarg spmm/sddmm, "
        "Engine.*_session, old CLI entry points); excluded from the "
        "-W error::DeprecationWarning CI run",
    )


def make_structured_sparse(
    rng: np.random.Generator,
    m: int,
    k: int,
    vector_length: int,
    sparsity: float,
    bits: int = 8,
    signed: bool = True,
) -> np.ndarray:
    """Random dense matrix with V x 1 structured sparsity.

    Each V-row strip keeps each column independently with probability
    (1 - sparsity); kept vectors get random integers of the requested
    width (never all-zero, so format round trips are exact).
    """
    assert m % vector_length == 0
    strips = m // vector_length
    keep = rng.random((strips, k)) < (1.0 - sparsity)
    if signed:
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        lo, hi = 0, (1 << bits) - 1
    vals = rng.integers(lo, hi + 1, size=(strips, vector_length, k), dtype=np.int64)
    # ensure a kept vector is never entirely zero (it would vanish on
    # round trip); flip its first element to 1 when that happens
    allzero = (vals == 0).all(axis=1) & keep
    vals[:, 0, :][allzero] = 1
    dense = vals * keep[:, None, :]
    return dense.reshape(m, k).astype(np.int32)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def small_sparse(rng: np.random.Generator) -> np.ndarray:
    """A 32x64 int8 matrix with 8x1 blocks at 70% sparsity."""
    return make_structured_sparse(rng, 32, 64, 8, 0.7, bits=8)
