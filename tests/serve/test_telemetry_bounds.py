"""Telemetry memory stays bounded: the reservoir behind the snapshot."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.telemetry import Telemetry, _Reservoir


class TestReservoir:
    def test_exact_while_under_cap(self):
        r = _Reservoir(cap=8)
        for v in range(8):
            r.add(float(v))
        assert r.exact
        assert r.values == [float(v) for v in range(8)]
        assert (r.count, r.total) == (8, 28.0)
        assert r.mean == 3.5

    def test_thins_deterministically_past_cap(self):
        r = _Reservoir(cap=8)
        for v in range(9):
            r.add(float(v))
        assert not r.exact and r.stride == 2
        assert r.values == [0.0, 2.0, 4.0, 6.0, 8.0]  # every stride-th kept

    def test_count_and_total_stay_exact_forever(self):
        r = _Reservoir(cap=4)
        n = 10_000
        for v in range(n):
            r.add(1.0)
        assert (r.count, r.total, r.mean) == (n, float(n), 1.0)
        assert len(r.values) <= r.cap

    def test_identical_streams_identical_samples(self):
        a, b = _Reservoir(cap=16), _Reservoir(cap=16)
        for v in range(1000):
            a.add(float(v))
            b.add(float(v))
        assert a.values == b.values and a.stride == b.stride

    def test_sample_spans_the_stream_evenly(self):
        r = _Reservoir(cap=64)
        for v in range(100_000):
            r.add(float(v))
        # systematic sampling: retained values are multiples of stride
        assert all(v % r.stride == 0 for v in r.values)
        assert np.percentile(r.values, 50) == pytest.approx(50_000, rel=0.1)


class TestTelemetryBounded:
    def test_memory_constant_under_sustained_load(self):
        t = Telemetry()
        for batch in range(3000):
            t.record_batch("s", "spmm", 1e-6, [1e-5, 2e-5], backend="b", device="d")
        stats = t._sessions["s"]
        assert stats.latencies_s.count == 6000
        assert len(stats.latencies_s.values) <= _Reservoir.CAP
        assert len(stats.batch_sizes.values) <= _Reservoir.CAP
        snap = t.snapshot()
        assert snap.total["requests"] == 6000
        assert snap.total["batches"] == 3000

    def test_snapshot_unchanged_for_bounded_workloads(self):
        """Below the cap the reservoir IS the stream: summary numbers
        match a straight numpy computation over every observation (the
        historical unbounded-list behaviour, bit for bit)."""
        t = Telemetry()
        rng = np.random.default_rng(0)
        times = rng.uniform(1e-6, 1e-3, size=50)
        waits = rng.uniform(1e-5, 1e-3, size=200)
        for i, mt in enumerate(times):
            t.record_batch(
                "s", "spmm", float(mt), waits[4 * i: 4 * i + 4].tolist(),
                backend="b", device="d",
            )
        # each batch rider experiences its batch's modelled launch time
        latencies = np.repeat(times, 4)
        session = t.snapshot().sessions["s"]
        assert session["p50_ms"] == float(np.percentile(latencies, 50) * 1e3)
        assert session["p99_ms"] == float(np.percentile(latencies, 99) * 1e3)
        assert session["mean_queue_wait_ms"] == float(np.mean(waits) * 1e3)
        assert session["mean_batch_size"] == 4.0

    def test_snapshot_fingerprint_stable_past_the_cap(self):
        def build() -> Telemetry:
            t = Telemetry()
            for batch in range(_Reservoir.CAP):
                t.record_batch(
                    "s", "spmm", 1e-6, [1e-5, 2e-5], backend="b", device="d"
                )
            return t

        assert build().snapshot().fingerprint == build().snapshot().fingerprint
