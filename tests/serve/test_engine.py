"""Engine: prepared sessions, batched serving, exactness, telemetry.

Exercises the pre-v1 session factories (deprecation shims).
"""

import time

import numpy as np
import pytest

from repro.core.api import SparseMatrix, spmm as direct_spmm
from repro.errors import ConfigError, ShapeError
from repro.serve.batcher import BatchPolicy
from repro.serve.cache import PlanCache
from repro.serve.engine import Engine, bits_required
from repro.serve.planner import ExecutionPlanner
from tests.conftest import make_structured_sparse


pytestmark = [
    pytest.mark.legacy,
    pytest.mark.filterwarnings("ignore::DeprecationWarning"),
]


@pytest.fixture
def weights(rng):
    return make_structured_sparse(rng, 64, 128, 8, 0.7, bits=8)


@pytest.fixture
def engine():
    # generous wait so tests control flushing explicitly
    with Engine(policy=BatchPolicy(max_batch_size=8, max_wait_s=10.0)) as e:
        yield e


class TestBitsRequired:
    def test_widths(self):
        assert bits_required(np.array([-8, 7])) == 4
        assert bits_required(np.array([-128, 127])) == 8
        assert bits_required(np.array([300])) == 12
        assert bits_required(np.array([-30000])) == 16

    def test_out_of_range(self):
        with pytest.raises(ConfigError):
            bits_required(np.array([1 << 20]))


class TestSpmmServing:
    def test_bit_identical_to_direct_path(self, engine, weights, rng):
        session = engine.spmm_session("w", weights, vector_length=8)
        rhs = rng.integers(-128, 128, size=(128, 32))
        future = session.submit(rhs)
        engine.flush()
        served = future.result(timeout=30)
        direct = direct_spmm(session.matrix, rhs, precision=served.plan.precision)
        np.testing.assert_array_equal(served.output, direct.output)
        np.testing.assert_array_equal(
            served.output, weights.astype(np.int64) @ rhs
        )

    def test_batched_outputs_match_unbatched_reference(self, engine, weights, rng):
        """Coalesced requests preserve per-request outputs exactly."""
        session = engine.spmm_session("w", weights, vector_length=8)
        payloads = [rng.integers(-128, 128, size=(128, 16)) for _ in range(6)]
        futures = [session.submit(rhs) for rhs in payloads]
        engine.flush()
        results = [f.result(timeout=30) for f in futures]
        assert all(r.batch_size == 6 for r in results)  # truly coalesced
        # the launch's plan is re-tuned for the realized batched width
        assert "n=96" in results[0].plan.key
        for rhs, res in zip(payloads, results):
            np.testing.assert_array_equal(
                res.output, weights.astype(np.int64) @ rhs
            )
            assert res.modelled_time_s > 0
            assert res.request_time_s == pytest.approx(res.modelled_time_s / 6)

    def test_mixed_shapes_do_not_coalesce(self, engine, weights, rng):
        session = engine.spmm_session("w", weights, vector_length=8)
        f16 = session.submit(rng.integers(-128, 128, size=(128, 16)))
        f32 = session.submit(rng.integers(-128, 128, size=(128, 32)))
        engine.flush()
        assert f16.result(timeout=30).output.shape == (64, 16)
        assert f32.result(timeout=30).output.shape == (64, 32)
        assert f16.result().batch_size == 1

    def test_low_precision_rhs_uses_faster_plan(self, engine, rng):
        weights4 = make_structured_sparse(rng, 64, 128, 8, 0.7, bits=4)
        session = engine.spmm_session("w4", weights4, vector_length=8)
        rhs = rng.integers(-8, 8, size=(128, 32))
        future = session.submit(rhs)
        engine.flush()
        res = future.result(timeout=30)
        assert res.plan.precision == "L4-R4"
        np.testing.assert_array_equal(res.output, weights4.astype(np.int64) @ rhs)

    def test_bad_rhs_shape_rejected_at_submit(self, engine, weights):
        session = engine.spmm_session("w", weights, vector_length=8)
        with pytest.raises(ShapeError):
            session.submit(np.zeros((4, 4), dtype=np.int64))

    def test_run_blocks_until_result(self, weights, rng):
        with Engine(policy=BatchPolicy(max_batch_size=4, max_wait_s=0.005)) as e:
            session = e.spmm_session("w", weights, vector_length=8)
            res = session.run(rng.integers(-128, 128, size=(128, 8)))
            assert res.output.shape == (64, 8)

    def test_accepts_prebuilt_sparse_matrix(self, engine, weights, rng):
        matrix = SparseMatrix.from_dense(weights, vector_length=8)
        session = engine.spmm_session("pre", matrix)
        assert session.matrix is matrix  # no re-conversion


class TestAttentionServing:
    def test_attention_requests_coalesce_by_batch(self, engine):
        session = engine.attention_session(
            "attn", seq_len=512, num_heads=4, sparsity=0.9, scheme=(8, 8)
        )
        futures = [session.submit(batch=2) for _ in range(3)]
        engine.flush()
        results = [f.result(timeout=60) for f in futures]
        assert all(r.batch_size == 3 for r in results)
        total = results[0].modelled_time_s
        assert total > 0
        for r in results:
            assert r.output is None
            assert r.detail.total_s == total
            assert r.request_time_s == pytest.approx(total * 2 / 6)

    def test_attention_populates_plan_cache(self, engine):
        session = engine.attention_session("attn", seq_len=512, scheme=(8, 4))
        future = session.submit()
        engine.flush()
        future.result(timeout=60)
        assert any("sddmm" in k for k in engine.planner.cache.keys())
        assert any("spmm" in k for k in engine.planner.cache.keys())

    def test_bad_batch_rejected(self, engine):
        session = engine.attention_session("attn", seq_len=512)
        with pytest.raises(ConfigError):
            session.submit(batch=0)


class TestEngineBookkeeping:
    def test_duplicate_session_name_rejected(self, engine, weights):
        engine.spmm_session("w", weights)
        with pytest.raises(ConfigError):
            engine.spmm_session("w", weights)

    def test_planner_and_cache_are_exclusive(self):
        with pytest.raises(ConfigError):
            Engine(planner=ExecutionPlanner(), cache=PlanCache())

    def test_session_lookup(self, engine, weights):
        s = engine.spmm_session("w", weights)
        assert engine.session("w") is s

    def test_telemetry_and_summary(self, engine, weights, rng):
        session = engine.spmm_session("w", weights, vector_length=8)
        futures = [
            session.submit(rng.integers(-128, 128, size=(128, 16)))
            for _ in range(4)
        ]
        engine.flush()
        [f.result(timeout=30) for f in futures]
        summary = engine.summary()
        assert summary["total"]["requests"] == 4
        assert summary["sessions"]["w"]["requests"] == 4
        assert summary["total"]["p50_ms"] <= summary["total"]["p99_ms"]
        assert summary["plan_cache"]["hit_rate"] > 0.5
        # one request-class plan + one realized-batch-width plan
        assert len(summary["plans"]) == 2
        assert "serving telemetry" in engine.report()

    def test_cache_reuse_across_engines(self, weights, rng, tmp_path):
        path = tmp_path / "plans.json"
        cache = PlanCache(path)
        with Engine(cache=cache, policy=BatchPolicy(1, 0.0)) as e:
            e.spmm_session("w", weights).run(
                rng.integers(-128, 128, size=(128, 16))
            )
            cache.save()

        warm = PlanCache(path)
        assert len(warm) == 1
        with Engine(cache=warm, policy=BatchPolicy(1, 0.0)) as e:
            e.spmm_session("w", weights).run(
                rng.integers(-128, 128, size=(128, 16))
            )
        assert warm.misses == 0  # every lookup served by the reloaded plans


class TestBackendPinning:
    def test_engine_resolves_default_backend(self, engine):
        assert engine.backend == "magicube-emulation"
        assert engine.device == "A100"

    def test_invalid_device_raises_typed_error(self):
        from repro.errors import DeviceError

        with pytest.raises(DeviceError):
            Engine(device="TPUv4")

    def test_session_pins_backend_into_plans(self, engine, weights, rng):
        session = engine.spmm_session("w", weights, vector_length=8)
        assert session.backend == "magicube-emulation"
        future = session.submit(rng.integers(-128, 128, size=(128, 16)))
        engine.flush()
        res = future.result(timeout=30)
        assert res.plan.backend == "magicube-emulation"
        assert "magicube-emulation@A100" in res.plan.key

    def test_strict_backend_session_serves_identical_outputs(self, weights, rng):
        with Engine(policy=BatchPolicy(1, 0.0)) as e:
            fast = e.spmm_session("fast", weights, vector_length=8)
            strict = e.spmm_session(
                "strict", weights, vector_length=8, backend="magicube-strict"
            )
            rhs = rng.integers(-8, 8, size=(128, 8))
            a = fast.run(rhs)
            b = strict.run(rhs)
        assert b.plan.backend == "magicube-strict"
        np.testing.assert_array_equal(a.output, b.output)

    def test_unknown_backend_rejected(self, engine, weights):
        with pytest.raises(ConfigError):
            engine.spmm_session("w", weights, backend="tpu-xla")

    def test_v100_engine_serves_through_fallback_backend(self, weights, rng):
        """V100 has no integer Tensor cores: the engine resolves the
        vector-sparse fallback and serves float results through the
        Backend protocol instead of a Magicube kernel config."""
        with Engine(device="V100", policy=BatchPolicy(1, 0.0)) as e:
            assert e.backend == "vector-sparse"
            session = e.spmm_session("w", weights, vector_length=8)
            rhs = rng.integers(-4, 4, size=(128, 16))
            res = session.run(rhs)
        assert res.plan.backend == "vector-sparse"
        assert res.plan.precision == "fp16"
        np.testing.assert_allclose(
            res.output, (weights @ rhs).astype(np.float32), rtol=1e-2
        )

    def test_non_magicube_batched_requests_coalesce(self, weights, rng):
        with Engine(device="V100", policy=BatchPolicy(max_batch_size=8,
                                                      max_wait_s=10.0)) as e:
            session = e.spmm_session("w", weights, vector_length=8)
            payloads = [rng.integers(-4, 4, size=(128, 16)) for _ in range(3)]
            futures = [session.submit(rhs) for rhs in payloads]
            e.flush()
            results = [f.result(timeout=30) for f in futures]
        assert all(r.batch_size == 3 for r in results)
        for rhs, res in zip(payloads, results):
            np.testing.assert_allclose(
                res.output, (weights @ rhs).astype(np.float32), rtol=1e-2
            )

    def test_attention_session_requires_magicube_backend(self):
        with Engine(device="V100") as e:  # engine backend: vector-sparse
            session = e.attention_session("attn", seq_len=512)
            assert session.backend == "magicube-emulation"
        with Engine(device="A100") as e:
            with pytest.raises(ConfigError):
                e.attention_session("attn", seq_len=512, backend="sputnik")


class TestTicketedClientAPI:
    def test_submit_result_round_trip(self, engine, weights, rng):
        engine.spmm_session("w", weights, vector_length=8)
        rhs = rng.integers(-128, 128, size=(128, 16))
        handle = engine.submit("w", rhs)
        assert not handle.done()
        engine.flush()
        res = engine.result(handle, timeout=30)
        np.testing.assert_array_equal(res.output, weights.astype(np.int64) @ rhs)

    def test_result_by_integer_ticket(self, engine, weights, rng):
        engine.spmm_session("w", weights, vector_length=8)
        handle = engine.submit("w", rng.integers(-128, 128, size=(128, 16)))
        engine.flush()
        res = engine.result(handle.id, timeout=30)
        assert res.batch_size == 1
        # redeemed tickets are forgotten
        with pytest.raises(ConfigError):
            engine.result(handle.id)

    def test_unknown_ticket_rejected(self, engine):
        with pytest.raises(ConfigError):
            engine.result(999999)

    def test_pending_requests_counter(self, engine, weights, rng):
        engine.spmm_session("w", weights, vector_length=8)
        handles = [
            engine.submit("w", rng.integers(-128, 128, size=(128, 16)))
            for _ in range(3)
        ]
        assert engine.pending_requests() == 3
        engine.flush()
        for h in handles:
            engine.result(h, timeout=30)
        assert engine.pending_requests() == 0

    def test_handles_are_awaitable(self, engine, weights, rng):
        import asyncio

        engine.spmm_session("w", weights, vector_length=8)
        rhs = rng.integers(-128, 128, size=(128, 16))

        async def client():
            handle = engine.submit("w", rhs)
            engine.flush()
            return await handle

        res = asyncio.run(client())
        np.testing.assert_array_equal(res.output, weights.astype(np.int64) @ rhs)

    def test_attention_submit_async(self, engine):
        session = engine.attention_session("attn", seq_len=512)
        handle = session.submit_async(batch=2)
        engine.flush()
        res = handle.result(timeout=60)
        assert res.output is None and res.detail.total_s > 0

    def test_completed_unredeemed_tickets_are_bounded(self, weights, rng):
        """Clients that await handles without calling engine.result()
        must not grow the ticket registry without bound."""
        with Engine(policy=BatchPolicy(1, 0.0)) as e:
            e.COMPLETED_TICKET_LIMIT = 4
            session = e.spmm_session("w", weights, vector_length=8)
            rhs = rng.integers(-128, 128, size=(128, 8))
            handles = []
            for _ in range(10):
                h = session.submit_async(rhs)
                h.result(timeout=30)  # resolved directly, never redeemed
                handles.append(h)
            # done-callbacks fire on worker threads; give them a moment
            deadline = time.monotonic() + 5.0
            while len(e._inflight) > 4 + 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert len(e._inflight) <= 4 + 1  # window + one in flight
            # recent tickets stay redeemable by id; evicted ones do not
            assert e.result(handles[-1].id, timeout=5) is not None
            with pytest.raises(ConfigError):
                e.result(handles[0].id)
            # handles themselves always resolve, evicted or not
            assert handles[0].result(timeout=5) is not None


class TestPlannerRoutedInference:
    def test_estimate_latency_accepts_planner(self):
        from repro.transformer.inference import (
            MAGICUBE_8_8,
            InferenceConfig,
            estimate_latency,
        )

        cfg = InferenceConfig(seq_len=512, num_heads=4, batch=2)
        planner = ExecutionPlanner(device=cfg.device)
        baseline = estimate_latency(cfg, MAGICUBE_8_8)
        routed = estimate_latency(cfg, MAGICUBE_8_8, planner=planner)
        # the planner tunes tile knobs against the same cost model: the
        # routed path can only match or beat the fixed default configs
        assert routed.total_s <= baseline.total_s * 1.001
        assert len(planner.cache) == 2  # one sddmm + one spmm plan
