"""Planner: objective handling, search results, memoization."""

import pytest

from repro.errors import ConfigError
from repro.serve.cache import PlanCache
from repro.serve.planner import (
    BSN_CANDIDATES,
    ExecutionPlanner,
    Objective,
    Plan,
    PlanKey,
)


@pytest.fixture
def planner() -> ExecutionPlanner:
    return ExecutionPlanner(device="A100")


class TestObjective:
    def test_latency_default_admits_everything(self):
        obj = Objective.latency()
        assert obj.admits(4, 4) and obj.admits(16, 16)

    def test_fixed_pins_one_pair(self):
        obj = Objective.fixed(8, 4)
        assert obj.admits(8, 4)
        assert not obj.admits(8, 8)
        assert not obj.admits(4, 4)

    def test_with_min_bits_tightens(self):
        obj = Objective.latency().with_min_bits(8, 8)
        assert not obj.admits(4, 4)
        assert obj.admits(8, 8)

    def test_empty_bounds_rejected(self):
        with pytest.raises(ConfigError):
            Objective(min_l_bits=16, max_l_bits=8)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            Objective(kind="speed")

    def test_token_distinguishes_objectives(self):
        assert Objective.latency().token != Objective.accuracy().token
        assert (
            Objective.accuracy(latency_budget_s=1e-3).token
            != Objective.accuracy().token
        )


class TestSpmmSearch:
    def test_latency_picks_lowest_precision(self, planner):
        # the Fig. 12 ladder: L4-R4 is the documented-best throughput
        # when the operands allow it
        plan = planner.plan_spmm(256, 512, 128, 8, 0.9, Objective.latency())
        assert plan.precision == "L4-R4"
        assert plan.predicted_time_s > 0
        assert plan.config["bsn"] in BSN_CANDIDATES

    def test_latency_respects_operand_widths(self, planner):
        obj = Objective.latency(min_l_bits=8, min_r_bits=8)
        plan = planner.plan_spmm(256, 512, 128, 8, 0.9, obj)
        assert plan.precision == "L8-R8"  # fastest pair covering int8

    def test_accuracy_picks_highest_fidelity(self, planner):
        plan = planner.plan_spmm(256, 512, 128, 8, 0.9, Objective.accuracy())
        assert plan.precision == "L16-R16"

    def test_accuracy_budget_degrades_gracefully(self, planner):
        fast = planner.plan_spmm(256, 512, 128, 8, 0.9, Objective.latency())
        # an impossible budget falls back to the fastest plan
        tight = planner.plan_spmm(
            256, 512, 128, 8, 0.9,
            Objective.accuracy(latency_budget_s=fast.predicted_time_s / 1e6),
        )
        assert tight.precision == fast.precision
        # a generous budget keeps full fidelity
        loose = planner.plan_spmm(
            256, 512, 128, 8, 0.9, Objective.accuracy(latency_budget_s=10.0)
        )
        assert loose.precision == "L16-R16"

    def test_accuracy_budget_middle_ground(self, planner):
        full = planner.plan_spmm(256, 512, 128, 8, 0.9, Objective.accuracy())
        budget = full.predicted_time_s * 0.9
        plan = planner.plan_spmm(
            256, 512, 128, 8, 0.9, Objective.accuracy(latency_budget_s=budget)
        )
        # highest-fidelity pair that still meets the budget
        assert plan.predicted_time_s <= budget
        assert plan.l_bits + plan.r_bits < 32

    def test_fixed_objective_only_tunes_knobs(self, planner):
        plan = planner.plan_spmm(256, 512, 64, 8, 0.8, Objective.fixed(16, 8))
        assert plan.precision == "L16-R8"
        assert set(plan.config) == {"bsn"}

    def test_infeasible_objective_raises(self, planner):
        with pytest.raises(ConfigError):
            # no Table-IV spmm pair has l_bits < r_bits
            planner.plan_spmm(
                256, 512, 64, 8, 0.8,
                Objective(min_l_bits=4, max_l_bits=4, min_r_bits=8),
            )

    def test_stride_follows_precision(self, planner):
        int8 = planner.plan_spmm(256, 512, 64, 8, 0.8, Objective.fixed(8, 8))
        int4 = planner.plan_spmm(256, 512, 64, 8, 0.8, Objective.fixed(4, 4))
        assert int8.stride == 16  # int8 MMA k dim
        assert int4.stride == 32  # int4 MMA k dim


class TestSddmmSearch:
    def test_latency_picks_lowest_precision(self, planner):
        plan = planner.plan_sddmm(512, 512, 64, 8, 0.9, Objective.latency())
        assert plan.precision == "L4-R4"
        assert "warps" in plan.config

    def test_fixed_scheme(self, planner):
        plan = planner.plan_sddmm(512, 512, 64, 8, 0.9, Objective.fixed(8, 8))
        assert plan.precision == "L8-R8"
        assert plan.predicted_time_s > 0


class TestMemoization:
    def test_repeat_query_hits_cache(self, planner):
        args = (256, 512, 128, 8, 0.9, Objective.latency())
        first = planner.plan_spmm(*args)
        assert planner.cache.misses == 1
        second = planner.plan_spmm(*args)
        assert second is first
        assert planner.cache.hits == 1

    def test_different_shapes_get_different_keys(self, planner):
        planner.plan_spmm(256, 512, 64, 8, 0.9)
        planner.plan_spmm(256, 512, 128, 8, 0.9)
        assert len(planner.cache) == 2

    def test_sparsity_bucketing(self, planner):
        planner.plan_spmm(256, 512, 64, 8, 0.90001)
        planner.plan_spmm(256, 512, 64, 8, 0.90049)
        assert len(planner.cache) == 1  # same 3-decimal bucket

    def test_shared_cache_across_planners(self):
        cache = PlanCache()
        a = ExecutionPlanner(device="A100", cache=cache)
        b = ExecutionPlanner(device="A100", cache=cache)
        a.plan_spmm(256, 512, 64, 8, 0.9)
        b.plan_spmm(256, 512, 64, 8, 0.9)
        assert cache.hits == 1 and cache.misses == 1


class TestPlanObject:
    def test_dict_round_trip(self, planner):
        plan = planner.plan_spmm(256, 512, 64, 8, 0.9)
        clone = Plan.from_dict(plan.to_dict())
        assert clone.precision == plan.precision
        assert clone.config == plan.config
        assert clone.predicted_time_s == plan.predicted_time_s
        assert clone.key == plan.key

    def test_config_builders_check_op(self, planner):
        spmm_plan = planner.plan_spmm(256, 512, 64, 8, 0.9)
        with pytest.raises(ConfigError):
            spmm_plan.sddmm_config()
        cfg = spmm_plan.spmm_config(l_signed=False)
        assert cfg.l_bits == spmm_plan.l_bits and not cfg.l_signed

    def test_key_string_is_stable(self):
        key = PlanKey(
            "spmm", 256, 512, 64, 8, 0.9,
            "magicube-emulation", "A100", "latency[L4-16,R4-16]",
        )
        assert str(key) == str(key)
        assert "spmm|256x512" in str(key)
        assert "magicube-emulation@A100" in str(key)

    def test_key_round_trips_through_parse(self):
        key = PlanKey(
            "sddmm", 512, 512, 64, 8, 0.9,
            "magicube-emulation", "A100+H100", "latency[L4-16,R4-16]",
        )
        assert PlanKey.parse(str(key)) == key

    def test_parse_rejects_v1_keys(self):
        # pre-runtime keys lack the backend@device segment
        with pytest.raises(ValueError):
            PlanKey.parse("spmm|256x512|n=64|v=8|s=0.900|A100|latency[L4-16,R4-16]")


class TestCrossDeviceSearch:
    """The runtime refactor's acceptance surface: (backend, device) keys."""

    def test_plan_key_carries_backend_and_device(self, planner):
        plan = planner.plan_spmm(256, 512, 128, 8, 0.9)
        key = PlanKey.parse(plan.key)
        assert key.backend == "magicube-emulation"
        assert key.device == "A100"
        assert plan.backend == "magicube-emulation"
        assert plan.device == "A100"

    def test_same_workload_differs_between_a100_and_h100(self):
        """Latency planning on A100 vs H100 picks different configs:
        H100 lacks int4 Tensor cores, so the L4-R4 winner is
        inadmissible there."""
        args = (256, 512, 128, 8, 0.9, Objective.latency())
        a100 = ExecutionPlanner(device="A100").plan_spmm(*args)
        h100 = ExecutionPlanner(device="H100").plan_spmm(*args)
        assert a100.precision == "L4-R4"
        assert h100.precision != a100.precision
        assert h100.l_bits >= 8  # no int4 path on H100
        assert a100.device == "A100" and h100.device == "H100"
        assert a100.key != h100.key

    def test_multi_device_search_picks_fastest_profile(self):
        planner = ExecutionPlanner(device="A100", devices=("H100",))
        plan = planner.plan_spmm(
            256, 512, 128, 8, 0.9, Objective.fixed(8, 8)
        )
        key = PlanKey.parse(plan.key)
        assert key.device == "A100+H100"
        # H100's int8 peak and bandwidth dominate A100's at this shape
        assert plan.device == "H100"

    def test_pinned_backend_appears_in_plan(self, planner):
        plan = planner.plan_spmm(
            256, 512, 128, 8, 0.9, backend="magicube-strict"
        )
        assert plan.backend == "magicube-strict"
        assert "magicube-strict@A100" in plan.key

    def test_cross_backend_search_keeps_fallback_order(self):
        """An explicit multi-backend search stays deterministic and the
        magicube kernels win the latency objective at high sparsity."""
        planner = ExecutionPlanner(
            device="A100",
            backends=("magicube-emulation", "vector-sparse", "cublas-fp16"),
        )
        plan = planner.plan_spmm(256, 512, 128, 8, 0.95)
        assert plan.backend == "magicube-emulation"
        key = PlanKey.parse(plan.key)
        assert key.backend == "magicube-emulation+vector-sparse+cublas-fp16"

    def test_dense_cublas_wins_at_low_sparsity(self):
        """The paper's dense/sparse crossover at equal (fp16) precision:
        dense GEMM wins at low sparsity, the sparse kernel at high, and
        the cross-backend search finds the boundary per shape."""
        planner = ExecutionPlanner(
            device="A100",
            backends=("vector-sparse", "cublas-fp16"),
        )
        dense_wins = planner.plan_spmm(1024, 2048, 256, 8, 0.3)
        sparse_wins = planner.plan_spmm(1024, 2048, 256, 8, 0.95)
        assert dense_wins.backend == "cublas-fp16"
        assert sparse_wins.backend == "vector-sparse"

    def test_unknown_device_raises_typed_error(self):
        from repro.errors import DeviceError

        with pytest.raises(DeviceError):
            ExecutionPlanner(device="B200")

    def test_non_magicube_plan_rejects_kernel_config(self):
        planner = ExecutionPlanner(device="A100", backends=("cublas-fp16",))
        plan = planner.plan_spmm(256, 512, 64, 8, 0.5)
        assert plan.precision == "fp16"
        with pytest.raises(ConfigError):
            plan.spmm_config()


class TestObjectiveParse:
    @pytest.mark.parametrize("obj", [
        Objective.latency(),
        Objective.latency(min_l_bits=8, min_r_bits=8),
        Objective.fixed(8, 4),
        Objective.accuracy(),
        Objective.accuracy(latency_budget_s=1e-3),
        Objective.accuracy(latency_budget_s=2.5e-6, min_l_bits=8),
    ])
    def test_round_trips_through_token(self, obj):
        assert Objective.parse(obj.token) == obj

    def test_round_trips_through_plan_key(self):
        """The scheduler's path: key string -> PlanKey -> Objective."""
        obj = Objective.latency(min_l_bits=8, min_r_bits=8)
        key = PlanKey(
            op="spmm", rows=512, cols=512, inner=64, vector_length=8,
            sparsity=0.9, backend="magicube-emulation", device="A100",
            objective=obj.token,
        )
        parsed = PlanKey.parse(str(key))
        assert Objective.parse(parsed.objective) == obj

    @pytest.mark.parametrize("bad", [
        "", "latency", "latency[L8-16]", "speed[L8-16,R8-16]",
        "latency[Lx-16,R8-16]", "latency[L8-16,R8-16",
    ])
    def test_malformed_tokens_raise(self, bad):
        with pytest.raises(ValueError):
            Objective.parse(bad)
