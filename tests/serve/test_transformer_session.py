"""Engine serving of whole-model ``TransformerRequest``\\ s.

Covers the session layer (batched intake, coalesced forwards, per-plan
telemetry) and the golden end-to-end regression: a seeded lra-classify
forward through :func:`repro.api.open_engine` is byte-stable across
engines, runs, and serving surfaces.
"""

import numpy as np
import pytest

import repro
from repro import api
from repro.errors import ConfigError

SPEC = dict(seq_len=64, d_model=32, num_heads=2, num_layers=1)


def make_ids(batch=2, seed=3):
    return np.random.default_rng(seed).integers(0, 16, size=(batch, 64))


class TestTransformerSession:
    def test_lra_classify_round_trip(self):
        ids = make_ids()
        with api.open_engine() as client:
            r = client.run(api.TransformerRequest(ids=ids, **SPEC))
        assert r.output.shape == (2, 2)
        assert r.plan is not None
        assert r.time_s > 0
        assert np.isfinite(r.output).all()

    def test_batched_rows_split_exactly(self):
        """Coalesced rows come back split per request, bit-identical to
        one whole-batch forward."""
        ids = make_ids(batch=4)
        with api.open_engine() as client:
            whole = client.run(
                api.TransformerRequest(ids=ids, session="xf", **SPEC)
            )
            futures = [
                client.submit(api.TransformerRequest(
                    ids=ids[i : i + 1], session="xf", **SPEC
                ))
                for i in range(4)
            ]
            client.engine.flush()
            parts = [f.result() for f in futures]
        split = np.concatenate([p.output for p in parts])
        assert split.tobytes() == whole.output.tobytes()

    def test_latency_modes(self):
        with api.open_engine() as client:
            prefill = client.run(
                api.TransformerRequest(mode="prefill", batch=2, **SPEC)
            )
            decode = client.run(
                api.TransformerRequest(mode="decode", batch=2, **SPEC)
            )
        assert prefill.output is None and decode.output is None
        assert prefill.time_s > decode.time_s > 0
        assert prefill.stats.total_s == prefill.time_s

    def test_telemetry_records_launches(self):
        """One forward books 2 * layers * heads * rows kernel launches
        against the session's plan key."""
        ids = make_ids()
        with api.open_engine() as client:
            client.run(api.TransformerRequest(ids=ids, session="xf", **SPEC))
            snap = client.telemetry.snapshot()
        session = snap.sessions["xf"]
        assert session["requests"] == 1
        plans = snap.plans
        assert any("s=0." in key for key in plans), plans

    def test_mode_validation(self):
        with pytest.raises(ConfigError, match="unknown transformer mode"):
            api.run(api.TransformerRequest(mode="train", **SPEC))

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigError, match="unknown mask variant"):
            api.run(api.TransformerRequest(mask_variant="dense", **SPEC))

    def test_missing_ids_rejected(self):
        with pytest.raises(ConfigError, match="ids is required"):
            api.run(api.TransformerRequest(**SPEC))

    def test_non_magicube_backend_rejected(self):
        with pytest.raises(ConfigError, match="cannot serve it"):
            api.run(api.TransformerRequest(
                ids=make_ids(), backend="dense-cublas-sim", **SPEC
            ))

    def test_topology_mismatch_rejected(self):
        with api.open_engine() as client:
            client.run(api.TransformerRequest(
                ids=make_ids(), session="xf", **SPEC
            ))
            with pytest.raises(ConfigError, match="serves topology"):
                client.run(api.TransformerRequest(
                    ids=make_ids(), session="xf", mask_variant="banded",
                    **SPEC,
                ))


class TestGoldenLogits:
    """The golden end-to-end regression: seeded forwards are byte-stable
    across engine instances and runs — any numerics drift in the mask
    builders, quantizers or kernel pipeline shows up here first."""

    def run_once(self, **overrides):
        ids = make_ids(batch=2, seed=9)
        kwargs = {**SPEC, "mask_variant": "strided", **overrides}
        with api.open_engine() as client:
            return client.run(api.TransformerRequest(ids=ids, **kwargs))

    def test_byte_stable_across_engines(self):
        first = self.run_once()
        second = self.run_once()
        assert first.output.tobytes() == second.output.tobytes()
        assert first.plan.key == second.plan.key

    @pytest.mark.parametrize(
        "variant", ("local", "strided", "blocked-random", "global-local",
                    "banded"),
    )
    def test_byte_stable_per_variant(self, variant):
        a = self.run_once(mask_variant=variant)
        b = self.run_once(mask_variant=variant)
        assert a.output.tobytes() == b.output.tobytes()

    def test_one_shot_matches_engine(self):
        """api.run and the engine path resolve to identical logits."""
        ids = make_ids(batch=2, seed=9)
        one_shot = api.run(api.TransformerRequest(
            ids=ids, mask_variant="strided", **SPEC
        ))
        engine = self.run_once()
        assert one_shot.output.tobytes() == engine.output.tobytes()
