"""Telemetry: per-(backend, device) columns and rejection counters."""

import numpy as np
import pytest

from repro.serve.batcher import BatchPolicy
from repro.serve.engine import Engine
from repro.serve.telemetry import Telemetry


pytestmark = [
    pytest.mark.legacy,
    pytest.mark.filterwarnings("ignore::DeprecationWarning"),
]


class TestPerBackendColumns:
    def test_batches_aggregate_by_backend_device(self):
        t = Telemetry()
        t.record_batch("s1", "spmm", 1e-3, [0.0],
                       backend="magicube-emulation", device="A100")
        t.record_batch("s2", "spmm", 2e-3, [0.0, 0.0],
                       backend="magicube-emulation", device="A100")
        t.record_batch("s1", "spmm", 4e-3, [0.0],
                       backend="cublas-fp16", device="H100")
        assert t.backends() == [
            ("cublas-fp16", "H100"), ("magicube-emulation", "A100"),
        ]
        mc = t.backend_summary("magicube-emulation", "A100")
        assert mc.requests == 3 and mc.batches == 2
        cb = t.backend_summary("cublas-fp16", "H100")
        assert cb.requests == 1
        assert cb.p50_ms > mc.p50_ms

    def test_unattributed_batches_only_in_session_view(self):
        t = Telemetry()
        t.record_batch("s1", "spmm", 1e-3, [0.0])
        assert t.backends() == []
        assert t.summary("s1").requests == 1

    def test_unknown_pair_summarizes_empty(self):
        t = Telemetry()
        assert t.backend_summary("nope", "A100").requests == 0

    def test_render_includes_backend_table_and_rejections(self):
        t = Telemetry()
        t.record_batch("s1", "spmm", 1e-3, [0.0],
                       backend="magicube-emulation", device="A100")
        t.record_rejection("s1")
        text = t.render()
        assert "per-backend telemetry" in text
        assert "magicube-emulation" in text
        assert "rejected" in text


class TestRejections:
    def test_fully_rejected_session_stays_visible(self):
        """A session whose every request was rejected still gets a
        report row; the TOTAL rejected count always adds up."""
        t = Telemetry()
        t.record_batch("served", "spmm", 1e-3, [0.0])
        t.record_rejection("throttled")
        assert t.sessions() == ["served", "throttled"]
        assert t.summary("throttled").requests == 0
        assert "throttled" in t.render()

    def test_counts_per_session_and_total(self):
        t = Telemetry()
        t.record_rejection("a")
        t.record_rejection("a", count=2)
        t.record_rejection("b")
        assert t.rejections("a") == 3
        assert t.rejections("b") == 1
        assert t.rejections() == 4
        assert t.rejections("never-seen") == 0


class TestEngineIntegration:
    def test_summary_breaks_out_backends(self):
        rng = np.random.default_rng(0)
        weights = rng.integers(-8, 8, size=(64, 64))
        with Engine(device="A100") as engine:
            session = engine.spmm_session("ffn", weights, vector_length=8)
            session.run(rng.integers(-8, 8, size=(64, 16)))
            summary = engine.summary()
        assert summary["rejected"] == 0
        (pair,) = summary["backends"]
        backend, device = pair.split("@")
        assert device == "A100"
        assert summary["backends"][pair]["requests"] == 1
        assert "per-backend telemetry" in engine.report()

    def test_admission_rejections_reach_telemetry(self):
        import pytest

        from repro.errors import AdmissionError

        rng = np.random.default_rng(0)
        weights = rng.integers(-8, 8, size=(64, 64))
        policy = BatchPolicy(
            max_batch_size=64, max_wait_s=5.0, max_queue_depth=1
        )
        with Engine(device="A100", policy=policy) as engine:
            session = engine.spmm_session("ffn", weights, vector_length=8)
            rhs = rng.integers(-8, 8, size=(64, 16))
            first = session.submit(rhs)
            with pytest.raises(AdmissionError):
                session.submit(rhs)
            engine.flush()
            first.result(timeout=5)
            assert engine.telemetry.rejections("ffn") == 1
            assert engine.summary()["rejected"] == 1


class TestSnapshot:
    """TelemetrySnapshot: the re-tuning scheduler's input contract."""

    KEY = "spmm|512x512|n=64|v=8|s=0.900|magicube-emulation@A100|latency[L8-16,R8-16]"

    def record(self, t: Telemetry) -> None:
        t.record_batch("ffn", "spmm", 1e-3, [0.0, 0.0],
                       backend="magicube-emulation", device="A100",
                       plan_key=self.KEY, predicted_time_s=9e-4)
        t.record_batch("ffn", "spmm", 2e-3, [0.0],
                       backend="magicube-emulation", device="A100",
                       plan_key=self.KEY, predicted_time_s=9e-4)
        t.record_rejection("ffn", 2)

    def test_identical_recordings_produce_identical_snapshots(self):
        a, b = Telemetry(), Telemetry()
        self.record(a)
        self.record(b)
        assert a.snapshot() == b.snapshot()
        assert a.snapshot().fingerprint == b.snapshot().fingerprint

    def test_snapshot_is_stable_across_time(self):
        """Wall-clock fields are excluded: snapshotting the same state
        twice (later) yields the same snapshot."""
        import time

        t = Telemetry()
        self.record(t)
        first = t.snapshot()
        time.sleep(0.01)
        assert t.snapshot() == first

    def test_json_round_trip(self):
        from repro.serve.telemetry import TelemetrySnapshot

        t = Telemetry()
        self.record(t)
        snap = t.snapshot()
        again = TelemetrySnapshot.from_json(snap.to_json())
        assert again == snap
        assert again.fingerprint == snap.fingerprint
        assert again.plans[self.KEY]["requests"] == 3

    def test_save_load_round_trip(self, tmp_path):
        from repro.serve.telemetry import TelemetrySnapshot

        t = Telemetry()
        self.record(t)
        path = t.snapshot().save(tmp_path / "telemetry.json")
        assert TelemetrySnapshot.load(path) == t.snapshot()

    def test_plan_stats_feed_the_scheduler(self):
        t = Telemetry()
        self.record(t)
        snap = t.snapshot()
        stats = snap.plans[self.KEY]
        assert stats["requests"] == 3
        assert stats["batches"] == 2
        assert stats["launches"] == 2
        assert stats["modelled_busy_s"] == pytest.approx(3e-3)
        assert stats["predicted_time_s"] == pytest.approx(9e-4)
        assert stats["backend"] == "magicube-emulation"
        assert stats["device"] == "A100"
        assert t.plans() == [self.KEY]

    def test_sddmm_launch_accounting(self):
        """Item-by-item dispatches record their launch count so observed
        per-launch time stays comparable to the plan's estimate."""
        t = Telemetry()
        t.record_batch("att", "sddmm", 4e-3, [0.0] * 4,
                       backend="magicube-emulation", device="A100",
                       plan_key="k", predicted_time_s=1e-3, launches=4)
        stats = t.snapshot().plans["k"]
        assert stats["launches"] == 4
        assert stats["modelled_busy_s"] / stats["launches"] == pytest.approx(1e-3)

    def test_snapshot_matches_rendered_summary_tables(self):
        """The snapshot's numbers are exactly the render()/summary()
        numbers (minus the wall-clock columns)."""
        t = Telemetry()
        self.record(t)
        snap = t.snapshot()
        summary = t.summary("ffn")
        assert snap.sessions["ffn"]["requests"] == summary.requests
        assert snap.sessions["ffn"]["batches"] == summary.batches
        assert snap.sessions["ffn"]["p50_ms"] == summary.p50_ms
        assert snap.sessions["ffn"]["p95_ms"] == summary.p95_ms
        assert snap.sessions["ffn"]["p99_ms"] == summary.p99_ms
        assert snap.sessions["ffn"]["modelled_throughput_rps"] == (
            summary.modelled_throughput_rps
        )
        backend = t.backend_summary("magicube-emulation", "A100")
        key = "magicube-emulation@A100"
        assert snap.backends[key]["requests"] == backend.requests
        assert snap.backends[key]["p99_ms"] == backend.p99_ms
        assert snap.rejections == {"ffn": 2}
        assert snap.total["requests"] == t.summary().requests
        assert "wall_s" not in snap.total
        # and the rendered table carries the same cells
        text = t.render()
        assert f"{summary.p50_ms:.4f}" in text
        assert f"{backend.p99_ms:.4f}" in text

    def test_engine_attributes_plans_in_snapshot(self, rng):
        """Served traffic shows up per plan key with the plan's cost
        estimate attached (the scheduler's regression input)."""
        from tests.conftest import make_structured_sparse

        engine = Engine(device="A100")
        weights = make_structured_sparse(rng, 64, 64, 8, 0.7)
        session = engine._make_spmm_session("ffn", weights)
        with engine:
            session.run(rng.integers(-8, 8, size=(64, 16)))
        snap = engine.telemetry.snapshot()
        assert len(snap.plans) == 1
        (key,), (stats,) = snap.plans.keys(), snap.plans.values()
        assert key.startswith("spmm|64x64|n=16")
        assert stats["predicted_time_s"] > 0
        assert stats["requests"] == 1

    def test_reset_plans_drops_only_the_named_keys(self):
        t = Telemetry()
        self.record(t)
        t.record_batch("att", "spmm", 1e-3, [0.0], plan_key="other")
        t.reset_plans([self.KEY, "never-seen"])
        assert t.plans() == ["other"]
        # session/backend views are untouched
        assert t.summary("ffn").requests == 3
