"""Telemetry: per-(backend, device) columns and rejection counters."""

import numpy as np
import pytest

from repro.serve.batcher import BatchPolicy
from repro.serve.engine import Engine
from repro.serve.telemetry import Telemetry


pytestmark = [
    pytest.mark.legacy,
    pytest.mark.filterwarnings("ignore::DeprecationWarning"),
]


class TestPerBackendColumns:
    def test_batches_aggregate_by_backend_device(self):
        t = Telemetry()
        t.record_batch("s1", "spmm", 1e-3, [0.0],
                       backend="magicube-emulation", device="A100")
        t.record_batch("s2", "spmm", 2e-3, [0.0, 0.0],
                       backend="magicube-emulation", device="A100")
        t.record_batch("s1", "spmm", 4e-3, [0.0],
                       backend="cublas-fp16", device="H100")
        assert t.backends() == [
            ("cublas-fp16", "H100"), ("magicube-emulation", "A100"),
        ]
        mc = t.backend_summary("magicube-emulation", "A100")
        assert mc.requests == 3 and mc.batches == 2
        cb = t.backend_summary("cublas-fp16", "H100")
        assert cb.requests == 1
        assert cb.p50_ms > mc.p50_ms

    def test_unattributed_batches_only_in_session_view(self):
        t = Telemetry()
        t.record_batch("s1", "spmm", 1e-3, [0.0])
        assert t.backends() == []
        assert t.summary("s1").requests == 1

    def test_unknown_pair_summarizes_empty(self):
        t = Telemetry()
        assert t.backend_summary("nope", "A100").requests == 0

    def test_render_includes_backend_table_and_rejections(self):
        t = Telemetry()
        t.record_batch("s1", "spmm", 1e-3, [0.0],
                       backend="magicube-emulation", device="A100")
        t.record_rejection("s1")
        text = t.render()
        assert "per-backend telemetry" in text
        assert "magicube-emulation" in text
        assert "rejected" in text


class TestRejections:
    def test_fully_rejected_session_stays_visible(self):
        """A session whose every request was rejected still gets a
        report row; the TOTAL rejected count always adds up."""
        t = Telemetry()
        t.record_batch("served", "spmm", 1e-3, [0.0])
        t.record_rejection("throttled")
        assert t.sessions() == ["served", "throttled"]
        assert t.summary("throttled").requests == 0
        assert "throttled" in t.render()

    def test_counts_per_session_and_total(self):
        t = Telemetry()
        t.record_rejection("a")
        t.record_rejection("a", count=2)
        t.record_rejection("b")
        assert t.rejections("a") == 3
        assert t.rejections("b") == 1
        assert t.rejections() == 4
        assert t.rejections("never-seen") == 0


class TestEngineIntegration:
    def test_summary_breaks_out_backends(self):
        rng = np.random.default_rng(0)
        weights = rng.integers(-8, 8, size=(64, 64))
        with Engine(device="A100") as engine:
            session = engine.spmm_session("ffn", weights, vector_length=8)
            session.run(rng.integers(-8, 8, size=(64, 16)))
            summary = engine.summary()
        assert summary["rejected"] == 0
        (pair,) = summary["backends"]
        backend, device = pair.split("@")
        assert device == "A100"
        assert summary["backends"][pair]["requests"] == 1
        assert "per-backend telemetry" in engine.report()

    def test_admission_rejections_reach_telemetry(self):
        import pytest

        from repro.errors import AdmissionError

        rng = np.random.default_rng(0)
        weights = rng.integers(-8, 8, size=(64, 64))
        policy = BatchPolicy(
            max_batch_size=64, max_wait_s=5.0, max_queue_depth=1
        )
        with Engine(device="A100", policy=policy) as engine:
            session = engine.spmm_session("ffn", weights, vector_length=8)
            rhs = rng.integers(-8, 8, size=(64, 16))
            first = session.submit(rhs)
            with pytest.raises(AdmissionError):
                session.submit(rhs)
            engine.flush()
            first.result(timeout=5)
            assert engine.telemetry.rejections("ffn") == 1
            assert engine.summary()["rejected"] == 1
