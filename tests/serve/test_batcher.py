"""MicroBatcher: coalescing, policy limits, admission, error propagation."""

import threading

import pytest

from repro.errors import AdmissionError
from repro.serve.batcher import BatchItem, BatchPolicy, MicroBatcher


class Recorder:
    """Execute function that logs every batch it gets."""

    def __init__(self, fail_on=None):
        self.batches = []
        self.lock = threading.Lock()
        self.fail_on = fail_on

    def __call__(self, key, items):
        with self.lock:
            self.batches.append((key, [i.payload for i in items]))
        if self.fail_on is not None and key == self.fail_on:
            raise RuntimeError(f"boom on {key}")
        return [f"{key}:{i.payload}" for i in items]


class TestCoalescing:
    def test_same_key_requests_share_a_batch(self):
        rec = Recorder()
        with MicroBatcher(rec, BatchPolicy(max_batch_size=16, max_wait_s=5.0)) as mb:
            futures = [mb.submit("k", i) for i in range(6)]
            mb.flush()
            results = [f.result(timeout=5) for f in futures]
        assert results == [f"k:{i}" for i in range(6)]
        assert len(rec.batches) == 1
        assert rec.batches[0] == ("k", list(range(6)))

    def test_full_batch_dispatches_without_flush(self):
        rec = Recorder()
        with MicroBatcher(rec, BatchPolicy(max_batch_size=4, max_wait_s=60.0)) as mb:
            futures = [mb.submit("k", i) for i in range(4)]
            results = [f.result(timeout=5) for f in futures]
        assert results == [f"k:{i}" for i in range(4)]

    def test_max_batch_size_chunks(self):
        rec = Recorder()
        with MicroBatcher(rec, BatchPolicy(max_batch_size=8, max_wait_s=5.0)) as mb:
            futures = [mb.submit("k", i) for i in range(10)]
            mb.flush()
            [f.result(timeout=5) for f in futures]
        sizes = sorted(len(b) for _, b in rec.batches)
        assert sizes == [2, 8]

    def test_different_keys_never_mix(self):
        rec = Recorder()
        with MicroBatcher(rec, BatchPolicy(max_batch_size=16, max_wait_s=5.0)) as mb:
            fa = [mb.submit("a", i) for i in range(3)]
            fb = [mb.submit("b", i) for i in range(2)]
            mb.flush()
            assert [f.result(timeout=5) for f in fa] == ["a:0", "a:1", "a:2"]
            assert [f.result(timeout=5) for f in fb] == ["b:0", "b:1"]
        keys = {k for k, _ in rec.batches}
        assert keys == {"a", "b"}
        assert len(rec.batches) == 2

    def test_max_wait_flushes_automatically(self):
        rec = Recorder()
        with MicroBatcher(rec, BatchPolicy(max_batch_size=64, max_wait_s=0.01)) as mb:
            future = mb.submit("k", 1)
            assert future.result(timeout=5) == "k:1"  # no flush() call

    def test_queue_wait_is_reported(self):
        seen = []

        def execute(key, items):
            seen.extend(items)
            return [i.payload for i in items]

        with MicroBatcher(execute, BatchPolicy(max_batch_size=4, max_wait_s=0.01)) as mb:
            mb.submit("k", 0).result(timeout=5)
        assert all(isinstance(i, BatchItem) and i.queue_wait_s >= 0 for i in seen)


class TestLifecycleAndErrors:
    def test_execute_error_propagates_to_all_futures(self):
        rec = Recorder(fail_on="bad")
        with MicroBatcher(rec, BatchPolicy(max_batch_size=8, max_wait_s=5.0)) as mb:
            futures = [mb.submit("bad", i) for i in range(3)]
            good = mb.submit("good", 7)
            mb.flush()
            for f in futures:
                with pytest.raises(RuntimeError, match="boom"):
                    f.result(timeout=5)
            assert good.result(timeout=5) == "good:7"

    def test_wrong_result_count_is_an_error(self):
        def execute(key, items):
            return []  # wrong arity

        with MicroBatcher(execute, BatchPolicy(max_batch_size=2, max_wait_s=5.0)) as mb:
            f = mb.submit("k", 1)
            mb.flush()
            with pytest.raises(RuntimeError, match="results"):
                f.result(timeout=5)

    def test_close_drains_pending(self):
        rec = Recorder()
        mb = MicroBatcher(rec, BatchPolicy(max_batch_size=64, max_wait_s=60.0))
        futures = [mb.submit("k", i) for i in range(5)]
        mb.close()
        assert [f.result(timeout=5) for f in futures] == [f"k:{i}" for i in range(5)]

    def test_submit_after_close_raises(self):
        mb = MicroBatcher(Recorder(), BatchPolicy())
        mb.close()
        with pytest.raises(RuntimeError):
            mb.submit("k", 1)

    def test_close_is_idempotent(self):
        mb = MicroBatcher(Recorder(), BatchPolicy())
        mb.close()
        mb.close()

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_wait_s=-1.0)

    def test_admission_policy_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_queue_depth=0)
        with pytest.raises(ValueError):
            BatchPolicy(admission_budget_s=-0.1)

    def test_concurrent_submitters(self):
        rec = Recorder()
        results = []
        lock = threading.Lock()

        def client(tag):
            with MicroBatcher(rec, BatchPolicy(max_batch_size=4, max_wait_s=0.005)) as mb:
                futs = [mb.submit("k", f"{tag}-{i}") for i in range(8)]
                out = [f.result(timeout=5) for f in futs]
            with lock:
                results.extend(out)

        threads = [threading.Thread(target=client, args=(t,)) for t in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 24


class TestAdmissionControl:
    def test_default_policy_admits_everything(self):
        rec = Recorder()
        with MicroBatcher(rec, BatchPolicy(max_batch_size=64, max_wait_s=60.0)) as mb:
            futures = [mb.submit("k", i) for i in range(40)]
            mb.flush()
            [f.result(timeout=5) for f in futures]
        assert mb.rejections() == 0

    def test_queue_depth_gate_rejects(self):
        rec = Recorder()
        policy = BatchPolicy(max_batch_size=64, max_wait_s=60.0, max_queue_depth=3)
        with MicroBatcher(rec, policy) as mb:
            futures = [mb.submit("k", i) for i in range(3)]
            with pytest.raises(AdmissionError, match="max_queue_depth"):
                mb.submit("k", 99)
            mb.flush()
            assert [f.result(timeout=5) for f in futures] == [
                f"k:{i}" for i in range(3)
            ]
        assert mb.rejections() == 1
        assert mb.rejections("k") == 1
        assert mb.rejections("other") == 0

    def test_depth_gate_is_per_group(self):
        rec = Recorder()
        policy = BatchPolicy(max_batch_size=64, max_wait_s=60.0, max_queue_depth=1)
        with MicroBatcher(rec, policy) as mb:
            a = mb.submit("a", 1)
            b = mb.submit("b", 1)  # a full 'a' queue must not block 'b'
            with pytest.raises(AdmissionError):
                mb.submit("a", 2)
            mb.flush()
            assert a.result(timeout=5) == "a:1"
            assert b.result(timeout=5) == "b:1"

    def test_latency_budget_gate_rejects(self):
        rec = Recorder()
        # est delay = max_wait_s * (1 + depth // max_batch_size):
        # depth 0, 1 -> 0.2s (admitted); depth 2 -> 0.4s (> 0.3 budget)
        policy = BatchPolicy(
            max_batch_size=2, max_wait_s=0.2, admission_budget_s=0.3
        )
        with MicroBatcher(rec, policy) as mb:
            futures = [mb.submit("k", i) for i in range(2)]
            with pytest.raises(AdmissionError, match="admission_budget_s"):
                mb.submit("k", 99)
            assert mb.rejections("k") == 1
            [f.result(timeout=5) for f in futures]

    def test_estimated_queue_delay_model(self):
        policy = BatchPolicy(max_batch_size=4, max_wait_s=0.01)
        assert policy.estimated_queue_delay_s(0) == pytest.approx(0.01)
        assert policy.estimated_queue_delay_s(3) == pytest.approx(0.01)
        assert policy.estimated_queue_delay_s(4) == pytest.approx(0.02)
        assert policy.estimated_queue_delay_s(9) == pytest.approx(0.03)

    def test_rejected_request_future_is_never_created(self):
        """Rejection is synchronous: the caller gets the exception, not
        a future that later fails."""
        rec = Recorder()
        policy = BatchPolicy(max_batch_size=64, max_wait_s=60.0, max_queue_depth=1)
        with MicroBatcher(rec, policy) as mb:
            mb.submit("k", 1)
            with pytest.raises(AdmissionError):
                mb.submit_async("k", 2)
            mb.flush()
        assert [p for _, p in rec.batches] == [[1]]
