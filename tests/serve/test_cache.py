"""PlanCache: counters, JSON persistence, concurrent access."""

import json
import threading

import pytest

from repro.serve.cache import PlanCache
from repro.serve.planner import Plan


def make_plan(key: str = "k", l_bits: int = 8, r_bits: int = 8) -> Plan:
    return Plan(
        op="spmm", l_bits=l_bits, r_bits=r_bits, config={"bsn": 64},
        predicted_time_s=1.5e-6, key=key,
    )


class TestCounters:
    def test_miss_then_hit(self):
        cache = PlanCache()
        assert cache.get("a") is None
        cache.put("a", make_plan("a"))
        assert cache.get("a") is not None
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_peek_does_not_count(self):
        cache = PlanCache()
        cache.put("a", make_plan("a"))
        assert cache.peek("a") is not None
        assert cache.peek("b") is None
        assert (cache.hits, cache.misses) == (0, 0)

    def test_empty_hit_rate(self):
        assert PlanCache().hit_rate == 0.0

    def test_reset_counters(self):
        cache = PlanCache()
        cache.get("a")
        cache.reset_counters()
        assert (cache.hits, cache.misses) == (0, 0)

    def test_get_or_build_builds_once(self):
        cache = PlanCache()
        calls = []

        def builder():
            calls.append(1)
            return make_plan("a")

        p1 = cache.get_or_build("a", builder)
        p2 = cache.get_or_build("a", builder)
        assert p1 is p2
        assert len(calls) == 1

    def test_stats_dict(self):
        cache = PlanCache()
        cache.put("a", make_plan("a"))
        cache.get("a")
        s = cache.stats()
        assert s == {"entries": 1, "hits": 1, "misses": 0, "hit_rate": 1.0}


class TestPersistence:
    def test_json_round_trip(self, tmp_path):
        cache = PlanCache()
        cache.put("a", make_plan("a", 8, 8))
        cache.put("b", make_plan("b", 4, 4))
        path = cache.save(tmp_path / "plans.json")

        fresh = PlanCache()
        assert fresh.load(path) == 2
        for key in ("a", "b"):
            plan = fresh.peek(key)
            original = cache.peek(key)
            assert plan.to_dict() == original.to_dict()

    def test_hits_after_reload(self, tmp_path):
        cache = PlanCache()
        cache.put("a", make_plan("a"))
        path = cache.save(tmp_path / "plans.json")
        fresh = PlanCache(path)
        assert fresh.get("a") is not None
        assert fresh.hits == 1

    def test_constructor_path_becomes_default(self, tmp_path):
        path = tmp_path / "plans.json"
        cache = PlanCache(path)
        cache.put("a", make_plan("a"))
        cache.save()
        assert json.loads(path.read_text())["plans"]["a"]["l_bits"] == 8

    def test_save_without_path_raises(self):
        with pytest.raises(ValueError):
            PlanCache().save()

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text(json.dumps({"version": 99, "plans": {}}))
        with pytest.raises(ValueError):
            PlanCache().load(path)

    def test_saved_files_carry_current_version(self, tmp_path):
        cache = PlanCache()
        cache.put("a", make_plan("a"))
        path = cache.save(tmp_path / "plans.json")
        assert json.loads(path.read_text())["version"] == 2

    def test_atomic_save_leaves_no_temp_files(self, tmp_path):
        cache = PlanCache()
        cache.put("a", make_plan("a"))
        cache.save(tmp_path / "plans.json")
        assert [p.name for p in tmp_path.iterdir()] == ["plans.json"]

    def test_save_replaces_existing_file_atomically(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text("garbage that a torn write would leave behind")
        cache = PlanCache()
        cache.put("a", make_plan("a"))
        cache.save(path)
        assert json.loads(path.read_text())["plans"]["a"]["op"] == "spmm"


_V1_KEY = "spmm|256x512|n=64|v=8|s=0.900|A100|latency[L4-16,R4-16]"
_V2_KEY = (
    "spmm|256x512|n=64|v=8|s=0.900|magicube-emulation@A100|latency[L4-16,R4-16]"
)


class TestV1Migration:
    def _v1_payload(self, extra_plans: dict | None = None) -> dict:
        plan = {
            "op": "spmm", "l_bits": 4, "r_bits": 4, "config": {"bsn": 64},
            "predicted_time_s": 1.5e-6, "key": _V1_KEY,
        }
        plans = {_V1_KEY: plan, **(extra_plans or {})}
        return {"version": 1, "plans": plans}

    def test_v1_keys_migrate_to_default_backend(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text(json.dumps(self._v1_payload()))
        cache = PlanCache()
        assert cache.load(path) == 1
        plan = cache.peek(_V2_KEY)
        assert plan is not None
        assert plan.backend == "magicube-emulation"
        assert plan.device == "A100"
        assert plan.key == _V2_KEY
        assert cache.peek(_V1_KEY) is None  # old key no longer served

    def test_migrated_plan_matches_new_planner_keys(self, tmp_path):
        """A migrated v1 cache is *hit* by a v2 planner, not re-planned."""
        from repro.serve.planner import ExecutionPlanner, Objective

        path = tmp_path / "plans.json"
        path.write_text(json.dumps(self._v1_payload()))
        cache = PlanCache(path)
        planner = ExecutionPlanner(device="A100", cache=cache)
        plan = planner.plan_spmm(256, 512, 64, 8, 0.9, Objective.latency())
        assert cache.hits == 1 and cache.misses == 0
        assert plan.predicted_time_s == 1.5e-6  # the stored decision

    def test_unmigratable_v1_keys_are_invalidated(self, tmp_path):
        bogus = {"not-a-plan-key": {"op": "spmm", "l_bits": 8, "r_bits": 8}}
        path = tmp_path / "plans.json"
        path.write_text(json.dumps(self._v1_payload(bogus)))
        cache = PlanCache()
        assert cache.load(path) == 1  # bogus entry dropped
        assert cache.keys() == [_V2_KEY]

    def test_v2_round_trip_preserves_backend_fields(self, tmp_path):
        from repro.serve.planner import Plan

        plan = Plan(
            op="spmm", l_bits=8, r_bits=8, config={"bsn": 96},
            predicted_time_s=2e-6, key=_V2_KEY,
            backend="magicube-strict", device="H100",
        )
        cache = PlanCache()
        cache.put(_V2_KEY, plan)
        path = cache.save(tmp_path / "plans.json")
        fresh = PlanCache(path)
        loaded = fresh.peek(_V2_KEY)
        assert loaded.backend == "magicube-strict"
        assert loaded.device == "H100"


class TestThreadSafety:
    def test_concurrent_lookups_count_consistently(self):
        cache = PlanCache()
        cache.put("a", make_plan("a"))

        def worker():
            for _ in range(200):
                cache.get("a")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.hits == 8 * 200


class TestCorruptFiles:
    """PlanCache.load hardening: typed errors, forgiving auto-load."""

    CASES = {
        "truncated": '{"version": 2, "plans": {"a": {"op": "spm',
        "not-json": "plan cache? never heard of it",
        "empty": "",
        "wrong-top-level": '["version", 2]',
        "no-plans-key": '{"version": 2}',
        "plans-not-a-dict": '{"version": 2, "plans": [1, 2]}',
        "malformed-entry": '{"version": 2, "plans": {"a": {"l_bits": 8}}}',
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_strict_load_raises_typed_error(self, tmp_path, name):
        from repro.errors import PlanCacheError

        path = tmp_path / "plans.json"
        path.write_text(self.CASES[name])
        with pytest.raises(PlanCacheError):
            PlanCache().load(path)

    def test_plan_cache_error_is_a_value_error(self, tmp_path):
        """Callers that caught the old untyped rejection keep working."""
        path = tmp_path / "plans.json"
        path.write_text("{broken")
        with pytest.raises(ValueError):
            PlanCache().load(path)

    def test_lenient_load_warns_and_keeps_going(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text("{broken")
        cache = PlanCache()
        cache.put("existing", make_plan("existing"))
        with pytest.warns(RuntimeWarning, match="unreadable plan cache"):
            assert cache.load(path, strict=False) == 0
        assert cache.peek("existing") is not None  # untouched

    def test_constructor_autoload_survives_corruption(self, tmp_path):
        """A torn shared cache file degrades startup to a cold cache."""
        path = tmp_path / "plans.json"
        path.write_text('{"version": 2, "plans": {"a"')
        with pytest.warns(RuntimeWarning):
            cache = PlanCache(path)
        assert len(cache) == 0
        # the cache is fully usable afterwards, including saving back
        cache.put("a", make_plan("a"))
        cache.save()
        assert PlanCache(path).peek("a") is not None

    def test_missing_file_still_raises_typed_error(self, tmp_path):
        from repro.errors import PlanCacheError

        with pytest.raises(PlanCacheError):
            PlanCache().load(tmp_path / "nope.json")


class TestPromote:
    def test_promote_installs_and_counts_changes(self):
        cache = PlanCache()
        cache.put("a", make_plan("a"))
        fresh_a = make_plan("a", l_bits=4, r_bits=4)   # differs
        same_a = make_plan("a")                         # identical
        new_b = make_plan("b")
        assert cache.promote({"a": fresh_a, "b": new_b}) == 2
        assert cache.peek("a").l_bits == 4
        assert cache.peek("b") is not None
        # re-promoting identical plans changes nothing
        assert cache.promote({"a": fresh_a, "b": new_b}) == 0
        assert cache.promote({"a": same_a}) == 1

    def test_promote_empty_is_a_no_op(self):
        cache = PlanCache()
        assert cache.promote({}) == 0
        assert len(cache) == 0

    def test_promote_is_safe_under_concurrent_reads(self):
        """Regression test: hammer get()/peek() from reader threads while
        promotions continuously swap the live plan set. Readers must only
        ever observe a fully-consistent generation (every key from the
        same promote), never a torn mix or a crash."""
        keys = [f"k{i}" for i in range(8)]
        generations = [
            {k: make_plan(k, l_bits=bits, r_bits=bits) for k in keys}
            for bits in (4, 8, 16)
        ]
        cache = PlanCache()
        cache.promote(generations[0])
        stop = threading.Event()
        errors: list[str] = []

        def reader():
            while not stop.is_set():
                seen = {cache.get(k).l_bits for k in keys if cache.get(k)}
                # a *single* lookup set may legitimately span a promote
                # boundary, but every individual plan must be complete
                for k in keys:
                    plan = cache.peek(k)
                    if plan is None:
                        errors.append(f"{k} vanished mid-promote")
                        return
                    if plan.l_bits not in (4, 8, 16):
                        errors.append(f"{k} torn: {plan.l_bits}")
                        return
                if not seen:
                    errors.append("all keys vanished")
                    return

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for t in readers:
            t.start()
        for _ in range(200):
            for gen in generations:
                cache.promote(gen)
        stop.set()
        for t in readers:
            t.join(timeout=5.0)
        assert errors == []

    def test_promote_atomic_per_batch(self):
        """A reader holding the lock between two promotes sees one whole
        generation: keys() snapshotted under the lock can never show a
        half-applied promotion batch."""
        cache = PlanCache()
        first = {f"g1-{i}": make_plan(f"g1-{i}") for i in range(16)}
        second = {f"g2-{i}": make_plan(f"g2-{i}") for i in range(16)}
        done = threading.Event()
        observed: list[set] = []

        def promoter():
            for _ in range(100):
                cache.promote(first)
                cache.promote(second)
            done.set()

        t = threading.Thread(target=promoter)
        t.start()
        while not done.is_set() or not observed:
            snapshot = set(cache.keys())
            g1 = {k for k in snapshot if k.startswith("g1-")}
            g2 = {k for k in snapshot if k.startswith("g2-")}
            observed.append(snapshot)
            # promotions only add/replace; a generation, once promoted,
            # is either fully present or not yet present
            assert len(g1) in (0, 16)
            assert len(g2) in (0, 16)
        t.join(timeout=5.0)
        assert observed  # at least one snapshot was checked
