"""PlanCache: counters, JSON persistence, concurrent access."""

import json
import threading

import pytest

from repro.serve.cache import PlanCache
from repro.serve.planner import Plan


def make_plan(key: str = "k", l_bits: int = 8, r_bits: int = 8) -> Plan:
    return Plan(
        op="spmm", l_bits=l_bits, r_bits=r_bits, config={"bsn": 64},
        predicted_time_s=1.5e-6, key=key,
    )


class TestCounters:
    def test_miss_then_hit(self):
        cache = PlanCache()
        assert cache.get("a") is None
        cache.put("a", make_plan("a"))
        assert cache.get("a") is not None
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_peek_does_not_count(self):
        cache = PlanCache()
        cache.put("a", make_plan("a"))
        assert cache.peek("a") is not None
        assert cache.peek("b") is None
        assert (cache.hits, cache.misses) == (0, 0)

    def test_empty_hit_rate(self):
        assert PlanCache().hit_rate == 0.0

    def test_reset_counters(self):
        cache = PlanCache()
        cache.get("a")
        cache.reset_counters()
        assert (cache.hits, cache.misses) == (0, 0)

    def test_get_or_build_builds_once(self):
        cache = PlanCache()
        calls = []

        def builder():
            calls.append(1)
            return make_plan("a")

        p1 = cache.get_or_build("a", builder)
        p2 = cache.get_or_build("a", builder)
        assert p1 is p2
        assert len(calls) == 1

    def test_stats_dict(self):
        cache = PlanCache()
        cache.put("a", make_plan("a"))
        cache.get("a")
        s = cache.stats()
        assert s == {"entries": 1, "hits": 1, "misses": 0, "hit_rate": 1.0}


class TestPersistence:
    def test_json_round_trip(self, tmp_path):
        cache = PlanCache()
        cache.put("a", make_plan("a", 8, 8))
        cache.put("b", make_plan("b", 4, 4))
        path = cache.save(tmp_path / "plans.json")

        fresh = PlanCache()
        assert fresh.load(path) == 2
        for key in ("a", "b"):
            plan = fresh.peek(key)
            original = cache.peek(key)
            assert plan.to_dict() == original.to_dict()

    def test_hits_after_reload(self, tmp_path):
        cache = PlanCache()
        cache.put("a", make_plan("a"))
        path = cache.save(tmp_path / "plans.json")
        fresh = PlanCache(path)
        assert fresh.get("a") is not None
        assert fresh.hits == 1

    def test_constructor_path_becomes_default(self, tmp_path):
        path = tmp_path / "plans.json"
        cache = PlanCache(path)
        cache.put("a", make_plan("a"))
        cache.save()
        assert json.loads(path.read_text())["plans"]["a"]["l_bits"] == 8

    def test_save_without_path_raises(self):
        with pytest.raises(ValueError):
            PlanCache().save()

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text(json.dumps({"version": 99, "plans": {}}))
        with pytest.raises(ValueError):
            PlanCache().load(path)


class TestThreadSafety:
    def test_concurrent_lookups_count_consistently(self):
        cache = PlanCache()
        cache.put("a", make_plan("a"))

        def worker():
            for _ in range(200):
                cache.get("a")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.hits == 8 * 200
