"""Tensor-parallel plan pricing: the planner chooses sharded plans.

The Magicube planning hook prices every kernel config at tensor-
parallel widths :data:`repro.runtime.magicube.TP_CANDIDATES`, adding
the ring all-reduce cost from :mod:`repro.transformer.distributed` to
the sharded variants. Small problems stay on one device (the 12 us
collective floor dominates); genuinely bandwidth-bound shapes elect a
``{"tp": g}`` plan, surfaced as :attr:`Plan.shards` and recorded per
plan key in telemetry.
"""

import pytest

from repro.errors import ConfigError
from repro.runtime.backend import Problem
from repro.runtime.magicube import TP_CANDIDATES, MagicubeEmulationBackend
from repro.serve.planner import ExecutionPlanner, Plan
from repro.serve.telemetry import Telemetry

SMALL = Problem("spmm", 64, 64, 64, 8, 0.7)
LARGE = Problem("spmm", 8192, 8192, 128, 8, 0.7)


@pytest.fixture(scope="module")
def backend() -> MagicubeEmulationBackend:
    return MagicubeEmulationBackend()


class TestPlanCandidatesTP:
    def test_small_problem_stays_unsharded(self, backend):
        for cand in backend.plan_candidates(SMALL, "A100"):
            assert "tp" not in cand.config, cand

    def test_large_problem_elects_sharding(self, backend):
        tps = {
            cand.config.get("tp", 1)
            for cand in backend.plan_candidates(LARGE, "A100")
        }
        assert tps - {1}, "a bandwidth-bound shape should shard"
        assert tps <= set(TP_CANDIDATES)

    def test_sharded_beats_unsharded_at_large_scale(self, backend):
        """The election is a price comparison, not a heuristic: the
        same search with sharding disabled must cost more."""
        import repro.runtime.magicube as magicube

        sharded = backend.plan_candidates(LARGE, "A100")
        try:
            magicube.TP_CANDIDATES = (1,)
            single = backend.plan_candidates(LARGE, "A100")
        finally:
            magicube.TP_CANDIDATES = (1, 2, 4)
        by_precision = {c.precision: c for c in single}
        for cand in sharded:
            if cand.config.get("tp", 1) > 1:
                assert cand.time_s < by_precision[cand.precision].time_s

    def test_indivisible_contraction_dim_never_shards(self, backend):
        # 72 columns cannot split 2 or 4 ways at vector length 8
        problem = Problem("spmm", 8192, 72, 128, 8, 0.7)
        cands = backend.plan_candidates(problem, "A100")
        assert cands, "the unsharded candidates must survive the guard"
        for cand in cands:
            assert "tp" not in cand.config

    def test_sddmm_shards_too(self, backend):
        problem = Problem("sddmm", 8192, 8192, 1024, 8, 0.9)
        tps = {
            cand.config.get("tp", 1)
            for cand in backend.plan_candidates(problem, "A100")
        }
        assert tps - {1}


class TestPlanShards:
    def test_sharded_plan_surfaces_width(self):
        planner = ExecutionPlanner(device="A100")
        plan = planner.plan_spmm(8192, 8192, 128, 8, 0.7)
        assert plan.shards > 1
        assert plan.config["tp"] == plan.shards

    def test_unsharded_plan_reports_one(self):
        planner = ExecutionPlanner(device="A100")
        plan = planner.plan_spmm(64, 64, 64, 8, 0.7)
        assert plan.shards == 1 and "tp" not in plan.config

    def test_tp_is_not_a_kernel_knob(self):
        """``tp`` is placement metadata: the kernel config builder
        must strip it (SpMMConfig has no such field)."""
        planner = ExecutionPlanner(device="A100")
        plan = planner.plan_spmm(8192, 8192, 128, 8, 0.7)
        cfg = plan.spmm_config()
        assert not hasattr(cfg, "tp")
        assert cfg.l_bits == plan.l_bits

    def test_shards_survive_serialization(self):
        planner = ExecutionPlanner(device="A100")
        plan = planner.plan_spmm(8192, 8192, 128, 8, 0.7)
        clone = Plan.from_dict(plan.to_dict())
        assert clone.shards == plan.shards > 1


class TestTelemetryShards:
    def test_recorded_per_plan_key(self):
        t = Telemetry()
        t.record_batch("s", "spmm", 1e-3, [0.0], plan_key="sharded", shards=4)
        t.record_batch("s", "spmm", 1e-3, [0.0], plan_key="plain")
        plans = t.snapshot().plans
        assert plans["sharded"]["shards"] == 4
        assert plans["plain"]["shards"] == 1


class TestDistributedAttention:
    """``AttentionRequest(num_gpus=g)`` prices the tensor-parallel
    deployment through the same resolution pipeline."""

    def test_distributed_breakdown(self):
        import repro
        from repro.api import AttentionRequest

        with repro.open_engine() as client:
            single = client.run(AttentionRequest(seq_len=256, num_heads=8))
            dist = client.run(
                AttentionRequest(seq_len=256, num_heads=8, num_gpus=4)
            )
        assert dist.stats["comm_s"] > 0
        assert dist.stats["compute_s"] < single.time_s  # the shard is smaller
        assert dist.time_s == pytest.approx(
            dist.stats["compute_s"] + dist.stats["comm_s"]
        )

    def test_topology_splits_sessions_per_width(self):
        from repro.api import AttentionRequest

        a = AttentionRequest(seq_len=128, num_heads=4)
        b = AttentionRequest(seq_len=128, num_heads=4, num_gpus=2)
        assert a.topology != b.topology

    def test_indivisible_heads_rejected(self):
        from repro import api

        with pytest.raises(ConfigError, match="shard"):
            api.run(api.AttentionRequest(seq_len=128, num_heads=4, num_gpus=3))
