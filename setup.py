"""Package metadata for the Magicube (SC'22) reproduction library."""

import os
import re

from setuptools import find_packages, setup

_HERE = os.path.abspath(os.path.dirname(__file__))


def _read(*parts: str) -> str:
    path = os.path.join(_HERE, *parts)
    if not os.path.exists(path):
        return ""
    with open(path, encoding="utf-8") as fh:
        return fh.read()


def _version() -> str:
    match = re.search(
        r'^__version__ = "([^"]+)"', _read("src", "repro", "version.py"), re.M
    )
    if match is None:
        raise RuntimeError("cannot find __version__ in src/repro/version.py")
    return match.group(1)


setup(
    name="magicube-repro",
    version=_version(),
    description=(
        "Reproduction of 'Efficient Quantized Sparse Matrix Operations on "
        "Tensor Cores' (SC 2022) with a batched inference-serving layer"
    ),
    long_description=_read("README.md"),
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={"test": ["pytest", "pytest-benchmark"]},
    entry_points={
        "console_scripts": [
            # the single v1 entry point: serve / autotune / bench
            "repro=repro.cli:main",
            # pre-v1 per-subsystem scripts (deprecation shims)
            "repro-bench=repro.cli:bench_main",
            "repro-serve=repro.cli:serve_main",
            "repro-autotune=repro.cli:autotune_main",
        ]
    },
)
