"""Quickstart: sparse x dense products with Magicube in five minutes.

Builds a pruned weight matrix with 8x1 block sparsity, runs SpMM at a
few precisions through the typed v1 API, runs SDDMM with the same
topology as a mask, and finally serves a batch of requests through
``repro.open_engine`` — all on the modelled A100.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro import SparseMatrix, api
from repro.dlmc import MatrixSpec, generate_matrix

# --- 1. a pruned layer: 256 x 1024, 90% sparse, 8x1 dense blocks -------
spec = MatrixSpec(model="rn50", rows=256, cols=1024, sparsity=0.9, seed=1)
weights = generate_matrix(spec, vector_length=8, bits=8)
A = SparseMatrix.from_dense(weights, vector_length=8, precision="L8-R8")
print(f"LHS: {A}")

# --- 2. SpMM: sparse weights x dense activations ------------------------
rng = np.random.default_rng(0)
activations = rng.integers(-128, 128, size=(1024, 256))
r = api.run(api.SpmmRequest(lhs=A, rhs=activations, precision="L8-R8"))
expected = weights.astype(np.int64) @ activations
assert np.array_equal(r.output, expected)
print(f"SpMM L8-R8 : exact result, modelled time {r.time_s * 1e6:7.1f} us, "
      f"{r.tops:5.1f} TOP/s")

# --- 3. the same product at mixed precision -----------------------------
r16 = api.run(api.SpmmRequest(lhs=A, rhs=activations, precision="L16-R8"))
assert np.array_equal(r16.output, expected)
print(f"SpMM L16-R8: exact result, modelled time {r16.time_s * 1e6:7.1f} us, "
      f"{r16.tops:5.1f} TOP/s  (emulated: two int8 MMAs per tile)")

# --- 4. SDDMM: sample a dense product at the sparse topology ------------
q = rng.integers(-128, 128, size=(256, 64))
k = rng.integers(-128, 128, size=(64, 1024))
s = api.run(api.SddmmRequest(a=q, b=k, mask=A, precision="L8-R8"))
dense_scores = q.astype(np.int64) @ k
sampled = s.output.to_dense()
keep = sampled != 0
assert np.array_equal(sampled[keep], dense_scores[keep])
print(f"SDDMM L8-R8: exact sampled result, modelled time "
      f"{s.time_s * 1e6:7.1f} us, {s.tops:5.1f} TOP/s")

# --- 5. fused dequantization epilogue ------------------------------------
rq = api.run(api.SpmmRequest(lhs=A, rhs=activations, precision="L8-R8",
                             scale=0.01))
print(f"Fused dequant: float32 output, max |value| = {np.abs(rq.output).max():.2f}")

# --- 6. the same requests, served: batching + cached plans ---------------
with repro.open_engine(device="A100") as client:
    futures = [
        client.submit(api.SpmmRequest(lhs=A, session="rn50-layer",
                                      rhs=rng.integers(-128, 128, size=(1024, 64))))
        for _ in range(8)
    ]
    client.flush()
    served = [f.result() for f in futures]
print(f"Served {len(served)} requests in batches of "
      f"{served[0].batch_size}; plan {served[0].plan.precision} via "
      f"{served[0].backend}, amortized {served[0].request_time_s * 1e6:.1f} us "
      f"per request")
