"""Serving a pruned model through the typed v1 client.

Prepares a sparse FFN layer once, lets the cost-model-guided planner
pick the execution configuration for each request class, and pushes a
burst of typed requests through the micro-batcher. Every output is
exact; the latencies are the calibrated A100 model's.

Run:  python examples/serving_demo.py
"""

import numpy as np

import repro
from repro import SparseMatrix, api
from repro.dlmc import MatrixSpec, generate_matrix
from repro.serve import BatchPolicy, Objective

# --- 1. a pruned layer prepared once ------------------------------------
spec = MatrixSpec(model="transformer", rows=512, cols=512, sparsity=0.9, seed=7)
weights = generate_matrix(spec, vector_length=8, bits=8)
matrix = SparseMatrix.from_dense(weights, vector_length=8)

with repro.open_engine(
    policy=BatchPolicy(max_batch_size=8, max_wait_s=0.005)
) as client:
    session = client.prepare(
        api.SpmmRequest(lhs=matrix, session="ffn", objective=Objective.latency())
    )
    print(f"session ffn: {session.matrix!r}, weights need "
          f"{session.weight_bits}-bit LHS")

    # --- 2. what did the planner decide for a (512, 128) RHS? ----------
    plan = session.plan_for(n=128, r_bits=8)
    print(f"plan: {plan.precision}, knobs {plan.config}, "
          f"predicted {plan.predicted_time_s * 1e6:.2f} us")

    # --- 3. a burst of same-shape requests coalesces into batches ------
    rng = np.random.default_rng(0)
    payloads = [rng.integers(-128, 128, size=(512, 128)) for _ in range(24)]
    futures = [
        client.submit(api.SpmmRequest(lhs=matrix, rhs=rhs, session="ffn"))
        for rhs in payloads
    ]
    client.flush()
    results = [f.result() for f in futures]

    # --- 4. outputs are exact, telemetry is aggregated ------------------
    for rhs, res in zip(payloads, results):
        expected = weights.astype(np.int64) @ rhs
        assert np.array_equal(res.output, expected)
    sizes = sorted({r.batch_size for r in results}, reverse=True)
    print(f"24 requests served exactly; batch sizes seen: {sizes}")
    print()
    print(client.report())
