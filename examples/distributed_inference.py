"""Tensor-parallel sparse-Transformer inference (paper Discussion b).

Magicube as the backend compute library of an operator-parallel system:
attention heads shard across GPUs, activations all-reduce over NVLink.
Prints the scaling curve and where communication starts to dominate.

Run:  python examples/distributed_inference.py
"""

from repro.transformer.distributed import TensorParallelConfig, estimate_latency_distributed
from repro.transformer.inference import MAGICUBE_8_8, VECTOR_SPARSE, InferenceConfig

base = InferenceConfig(seq_len=8192, num_heads=8, batch=8, sparsity=0.9)
print(f"model: seq={base.seq_len}, heads={base.num_heads}, batch={base.batch}, "
      f"sparsity={base.sparsity}, 4 layers\n")

print(f"{'GPUs':>4}  {'Magicube 8b-8b':>16}  {'speedup':>8}  {'comm %':>7}"
      f"  {'vectorSparse':>14}")
for g in (1, 2, 4, 8):
    cfg = TensorParallelConfig(base=base, num_gpus=g)
    m = estimate_latency_distributed(cfg, MAGICUBE_8_8)
    v = estimate_latency_distributed(cfg, VECTOR_SPARSE)
    sp = f"{m['speedup_vs_1gpu']:.2f}x" if m["speedup_vs_1gpu"] else "-"
    print(
        f"{g:>4}  {m['total_s'] * 1e3:>14.2f}ms  {sp:>8}  "
        f"{m['comm_fraction'] * 100:>6.1f}%  {v['total_s'] * 1e3:>12.2f}ms"
    )

print("\nScaling is near-linear while the per-GPU attention work dominates")
print("and flattens as the fixed all-reduce volume takes over — Magicube's")
print("faster kernels reach the communication wall earlier (Amdahl).")
