"""Fig. 11-style ablation of the SpMM optimizations on one matrix.

Shows how each kernel technique contributes: conflict-free shared-memory
staging (Fig. 4), the Algorithm-1 prefetch pipeline, and the int4
column-index-shuffling transpose (Fig. 7).

Run:  python examples/ablation_study.py
"""

from repro.bench.figures import ABLATION_VARIANTS
from repro.bench.runner import build_spmm_workload, tops_magicube_spmm
from repro.dlmc import MatrixSpec

SPEC = MatrixSpec("rn50", rows=256, cols=2304, sparsity=0.7, seed=2022)

print("SpMM ablation on a DLMC matrix (M=256, K=2304, N=512, sparsity 0.7)\n")
for l_bits, r_bits in ((8, 8), (4, 4)):
    for v in (2, 8):
        w = build_spmm_workload(SPEC, v, 512)
        print(f"L{l_bits}-R{r_bits}, V={v}:")
        prev = None
        for name, knobs in ABLATION_VARIANTS:
            tops = tops_magicube_spmm(w, l_bits, r_bits, **knobs)
            gain = f"  (+{tops / prev:.2f}x)" if prev else ""
            print(f"  {name:<48} {tops:6.1f} TOP/s{gain}")
            prev = tops
        print()

print("Index shuffling only matters on the int4 RHS path, where it replaces")
print("per-nibble bit surgery with 8 int32-granularity ops per 16 values.")
