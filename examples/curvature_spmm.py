"""Sparse curvature-matrix products (paper Discussion c).

"Our empirical observation shows that the curvature matrices in
second-order optimization may also be approximated through sparsity."
This example builds a Kronecker-factored curvature block (K-FAC style:
A = E[a a^T] over activations), sparsifies it to 8x1 blocks keeping the
dominant entries, quantizes to int8, and preconditions a gradient with
Magicube SpMM — measuring both the approximation quality and the
modelled speedup over the dense fp16 product.

Run:  python examples/curvature_spmm.py
"""

import numpy as np

from repro import SparseMatrix, api
from repro.baselines import CublasGemm, cost_model_for
from repro.lowp.quantize import symmetric_quantize

rng = np.random.default_rng(11)
dim, batch = 1024, 4096

# --- a realistic curvature factor: correlated activations ----------------
mix = rng.normal(size=(dim, dim)) * (rng.random((dim, dim)) < 0.05)
acts = rng.normal(size=(batch, dim)) @ (np.eye(dim) + 0.4 * mix)
curvature = (acts.T @ acts) / batch + 0.1 * np.eye(dim)

# --- sparsify to 8x1 blocks by block norm --------------------------------
v = 8
strips = dim // v
norms = np.linalg.norm(curvature.reshape(strips, v, dim), axis=1)
keep = np.zeros((strips, dim), dtype=bool)
for sparsity in (0.9,):
    budget = max(1, round((1.0 - sparsity) * dim))
    for s in range(strips):
        keep[s, np.argsort(norms[s])[-budget:]] = True
sparse_curv = curvature * np.repeat(keep, v, axis=0)

frob_kept = np.linalg.norm(sparse_curv) / np.linalg.norm(curvature)
print(f"curvature: {dim}x{dim}, 90% of 8x1 blocks dropped, "
      f"{frob_kept * 100:.1f}% of Frobenius norm kept")

# --- precondition gradients: sparse int8 vs dense fp16 -------------------
grads = rng.normal(size=(dim, 32)).astype(np.float32)
cq, cp = symmetric_quantize(sparse_curv, 8)
gq, gp = symmetric_quantize(grads, 8)
A = SparseMatrix.from_dense(cq, vector_length=v, precision="L8-R8")
r = api.run(api.SpmmRequest(lhs=A, rhs=gq, precision="L8-R8",
                            scale=cp.scale * gp.scale))

exact = sparse_curv @ grads
rel = float(np.abs(r.output - exact).mean() / np.abs(exact).mean())
print(f"int8 sparse preconditioning error vs float sparse: {rel * 100:.2f}%")

dense_t = cost_model_for("cublas_fp16").time(CublasGemm("fp16")(curvature, grads).stats)
print(f"modelled time: Magicube {r.time_s * 1e6:.1f} us vs dense fp16 "
      f"{dense_t * 1e6:.1f} us ({dense_t / r.time_s:.2f}x speedup)")
assert rel < 0.05
