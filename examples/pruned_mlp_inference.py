"""Quantized inference through a pruned MLP with Magicube SpMM.

The paper's other motivating workload (Sec. VI-c): "training with model
pruning results in SpMM in the forward pass". This example builds a
3-layer MLP whose weights are magnitude-pruned to 8x1 block sparsity,
quantizes weights and activations to int8, and runs the forward pass
entirely through the sparse integer kernels — comparing accuracy and
modelled latency against the dense fp16 baseline.

Run:  python examples/pruned_mlp_inference.py
"""

import numpy as np

from repro import SparseMatrix, api
from repro.baselines import CublasGemm, cost_model_for
from repro.lowp.quantize import symmetric_quantize


def block_prune(w: np.ndarray, v: int, sparsity: float) -> np.ndarray:
    """Keep the largest-norm V x 1 blocks of each strip."""
    out_rows, in_cols = w.shape
    strips = out_rows // v
    norms = np.linalg.norm(w.reshape(strips, v, in_cols), axis=1)
    keep_per_strip = max(1, round((1.0 - sparsity) * in_cols))
    mask = np.zeros((strips, in_cols), dtype=bool)
    for s in range(strips):
        mask[s, np.argsort(norms[s])[-keep_per_strip:]] = True
    return w * np.repeat(mask, v, axis=0)


rng = np.random.default_rng(42)
layers = [(1024, 1024), (1024, 1024), (1024, 256)]
batch, sparsity, v = 128, 0.9, 8

weights = [rng.normal(0, 0.05, size=shape).astype(np.float32) for shape in layers]
pruned = [block_prune(w.T, v, sparsity).T for w in weights]  # prune output blocks

x0 = rng.normal(size=(layers[0][0], batch)).astype(np.float32)

# --- float reference through the pruned network --------------------------
ref = x0
for w in pruned:
    ref = np.maximum(w.T @ ref, 0.0)

# --- quantized sparse forward pass ---------------------------------------
x = x0
total_time, dense_time = 0.0, 0.0
cm_dense = cost_model_for("cublas_fp16")
for i, w in enumerate(pruned):
    wq, wp = symmetric_quantize(w.T, 8)  # (out, in) int8 codes
    xq, xp = symmetric_quantize(x, 8)
    A = SparseMatrix.from_dense(wq, vector_length=v, precision="L8-R8")
    r = api.run(api.SpmmRequest(lhs=A, rhs=xq, precision="L8-R8",
                                scale=wp.scale * xp.scale))
    x = np.maximum(np.asarray(r.output, dtype=np.float32), 0.0)
    total_time += r.time_s
    dense_time += cm_dense.time(CublasGemm("fp16")(w.T, x0[: w.shape[0]] * 0 + 1.0).stats)
    print(f"layer {i}: sparsity={A.sparsity:.3f}  magicube {r.time_s * 1e6:7.1f} us")

rel_err = float(np.abs(x - ref).mean() / (np.abs(ref).mean() + 1e-9))
print(f"\nint8 sparse vs float pruned forward: mean relative error {rel_err:.4f}")
print(f"modelled latency: magicube int8 sparse {total_time * 1e6:7.1f} us "
      f"vs dense fp16 {dense_time * 1e6:7.1f} us "
      f"({dense_time / total_time:.2f}x speedup)")
assert rel_err < 0.1
