"""Mixed-precision SpMM across the full Table IV ladder.

Sweeps every supported Lx-Ry pair over sparsity levels on a DLMC-style
matrix and prints the Fig. 12-style TOP/s ladder, demonstrating the
emulation (L16-*, L12-*) and MMA-stacking (V < 8) machinery.

Run:  python examples/mixed_precision_spmm.py
"""

import numpy as np

from repro import SparseMatrix, api, supported_precisions
from repro.dlmc import MatrixSpec, generate_matrix

N = 256
print(f"{'sparsity':>8}  " + "".join(f"{p:>10}" for p in supported_precisions()))
for sparsity in (0.7, 0.8, 0.9, 0.95):
    spec = MatrixSpec("rn50", rows=256, cols=2304, sparsity=sparsity, seed=3)
    rng = np.random.default_rng(5)
    cells = []
    for precision in supported_precisions("spmm"):
        l_bits = int(precision.split("-")[0][1:])
        r_bits = int(precision.split("-")[1][1:])
        dense = generate_matrix(spec, vector_length=8, bits=min(l_bits, 8))
        A = SparseMatrix.from_dense(dense, vector_length=8, precision=precision)
        rhs = rng.integers(-(1 << (r_bits - 1)), 1 << (r_bits - 1), size=(2304, N))
        r = api.run(api.SpmmRequest(lhs=A, rhs=rhs, precision=precision))
        # every precision pair computes the exact integer product
        assert np.array_equal(r.output, dense.astype(np.int64) @ rhs)
        cells.append(f"{r.tops:10.1f}")
    print(f"{sparsity:>8}  " + "".join(cells))

print("\nAll pairs verified exact. Lower precision -> higher TOP/s;")
print("emulated pairs (L16-*, L12-*) cost extra MMAs but stay competitive")
print("because the kernels are bandwidth-bound (Sec. IV-D of the paper).")

# --- MMA stacking: short vectors recover utilization under emulation ----
print("\nMMA stacking at V=4 (Fig. 10b):")
for v in (8, 4):
    spec = MatrixSpec("rn50", rows=256, cols=2304, sparsity=0.8, seed=4)
    dense = generate_matrix(spec, vector_length=v, bits=8)
    A = SparseMatrix.from_dense(dense, vector_length=v, precision="L16-R8")
    rhs = np.random.default_rng(6).integers(-128, 128, size=(2304, N))
    r = api.run(api.SpmmRequest(lhs=A, rhs=rhs, precision="L16-R8"))
    mma_ops = r.stats.mma_ops["int8"]
    print(f"  V={v}: {mma_ops / 1e6:8.1f}M MMA ops "
          f"({'2 digit-MMAs stacked into 1' if v == 4 else '2 MMAs per tile'})")
