"""Quantized sparse-Transformer attention, end to end (paper Fig. 16-17).

Part 1 runs one quantized attention layer through the *real* Magicube
kernel pipeline (int8 SDDMM -> fp16 softmax with fused quantization ->
int8 SpMM with fused dequantization) on a small sequence and compares it
against float masked attention.

Part 2 regenerates a Fig. 17 panel: full-model latency at production
scale (seq 4096/8192) for the dense baseline, vectorSparse, and the
Magicube precision schemes — including the dense OOM.

Run:  python examples/sparse_transformer_inference.py
"""

import numpy as np

from repro.transformer.attention import MultiHeadAttention
from repro.transformer.inference import (
    ALL_BACKENDS,
    DenseOOM,
    InferenceConfig,
    estimate_latency,
)
from repro.transformer.masks import mask_statistics, mask_to_additive, strided_vector_mask

# --- Part 1: one quantized attention layer via the real kernels ---------
seq_len, d_model, heads = 64, 64, 2
rng = np.random.default_rng(0)
attn = MultiHeadAttention(d_model, heads, rng)
mask = strided_vector_mask(seq_len, vector_length=8, local_window=16, stride=32)
print("attention mask:", mask_statistics(mask))

x = rng.normal(size=(1, seq_len, d_model)).astype(np.float32)
ref = attn.forward(x, mask_to_additive(mask))
quant = attn.forward_quantized(x, mask, softmax_bits=16, qkv_bits=8, use_kernels=True)
rel_err = float(np.abs(quant - ref).mean() / np.abs(ref).mean())
print(f"kernel pipeline vs float attention: mean relative error {rel_err:.4f}")
assert rel_err < 0.05

# --- Part 2: Fig. 17-style latency panel ---------------------------------
print("\nEnd-to-end latency, 4 encoder layers, d_head=64, sparsity=0.9:")
header = f"{'config':<28}" + "".join(f"{b.label.split(' ')[0][:9]:>11}" for b in ALL_BACKENDS)
print(header)
for seq in (4096, 8192):
    for batch in (2, 8):
        cfg = InferenceConfig(seq_len=seq, num_heads=4, batch=batch, sparsity=0.9)
        cells = []
        for backend in ALL_BACKENDS:
            try:
                cells.append(f"{estimate_latency(cfg, backend).total_ms:9.2f}ms")
            except DenseOOM:
                cells.append(f"{'OOM':>11}")
        print(f"seq={seq} batch={batch:<14}" + "".join(f"{c:>11}" for c in cells))

print("\nNote the dense OOM at seq 8192 / batch 8 and the growing Magicube")
print("advantage with sequence length — the paper's Fig. 17 shapes.")
